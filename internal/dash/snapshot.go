package dash

import (
	"etsn/internal/obs"
)

// Point is one counter or gauge in a snapshot. Name is the full
// registry name (labels escaped as stored); Base and Labels are its
// parsed form, with label values unescaped back to the original stream,
// link, or tenant names — the JSON encoder round-trips names the
// Prometheus exposition has to escape.
type Point struct {
	Name   string            `json:"name"`
	Base   string            `json:"base"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistBucket is one non-empty histogram bucket (non-cumulative;
// the Prometheus exposition derives its cumulative le series from
// exactly these counts).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistPoint is one histogram in a snapshot: totals, the quantiles the
// 64-bucket exponential layout supports, and the raw buckets for
// client-side rendering.
type HistPoint struct {
	Name    string            `json:"name"`
	Base    string            `json:"base"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    int64             `json:"mean"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistBucket      `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time JSON view of a registry, the payload of
// /api/metrics and of each SSE frame on /api/metrics/stream. Slices are
// never null and are sorted by kind then name (the registry's Gather
// order), so successive frames diff cleanly.
type Snapshot struct {
	// AtUnixMs stamps the gather time.
	AtUnixMs int64 `json:"at_unix_ms"`
	// Seq increments per SSE frame (0 for one-shot /api/metrics).
	Seq        int64       `json:"seq"`
	Counters   []Point     `json:"counters"`
	Gauges     []Point     `json:"gauges"`
	Histograms []HistPoint `json:"histograms"`
}

// labelMap converts parsed pairs to a map (nil when unlabeled).
func labelMap(pairs []obs.LabelPair) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs))
	for _, p := range pairs {
		m[p.Key] = p.Value
	}
	return m
}

// BuildSnapshot gathers a registry into its JSON view. tenant, when
// non-empty, filters to instruments carrying that tenant label — the
// daemon's per-tenant registry view. A nil registry yields an empty
// (but fully-formed) snapshot.
func BuildSnapshot(reg *obs.Registry, atUnixMs int64, tenant string) Snapshot {
	snap := Snapshot{
		AtUnixMs:   atUnixMs,
		Counters:   []Point{},
		Gauges:     []Point{},
		Histograms: []HistPoint{},
	}
	for _, m := range reg.Gather() {
		base, pairs := obs.ParseName(m.Name)
		labels := labelMap(pairs)
		if tenant != "" && labels["tenant"] != tenant {
			continue
		}
		switch m.Kind {
		case obs.KindCounter:
			snap.Counters = append(snap.Counters, Point{Name: m.Name, Base: base, Labels: labels, Value: m.Value})
		case obs.KindGauge:
			snap.Gauges = append(snap.Gauges, Point{Name: m.Name, Base: base, Labels: labels, Value: m.Value})
		case obs.KindHistogram:
			h := m.Hist
			hp := HistPoint{
				Name: m.Name, Base: base, Labels: labels,
				Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
				Mean: h.Mean(),
				P50:  h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			}
			for _, b := range h.Buckets {
				hp.Buckets = append(hp.Buckets, HistBucket{Le: b.UpperBound, Count: b.Count})
			}
			snap.Histograms = append(snap.Histograms, hp)
		}
	}
	return snap
}

// laneJSON and laneSpanJSON are the /api/lanes wire shapes of obs.Lane.
type laneSpanJSON struct {
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Args    map[string]string `json:"args,omitempty"`
}

type laneJSON struct {
	Track string         `json:"track"`
	Spans []laneSpanJSON `json:"spans"`
}

func lanesToJSON(lanes []obs.Lane) []laneJSON {
	out := make([]laneJSON, 0, len(lanes))
	for _, ln := range lanes {
		lj := laneJSON{Track: ln.Track, Spans: make([]laneSpanJSON, 0, len(ln.Spans))}
		for _, sp := range ln.Spans {
			lj.Spans = append(lj.Spans, laneSpanJSON{
				Name: sp.Name, StartNs: sp.StartNs, DurNs: sp.DurNs, Args: sp.Args,
			})
		}
		out = append(out, lj)
	}
	return out
}
