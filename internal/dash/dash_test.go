package dash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"etsn/internal/obs"
)

// fixtureRegistry builds a registry exercising every instrument kind,
// labeled and unlabeled, including names the Prometheus exposition must
// escape.
func fixtureRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("etsn_sim_events_total").Add(42)
	reg.Counter(obs.Labels("etsn_sim_gate_opens_total", "link", "SW1->SW2")).Add(7)
	reg.Gauge(obs.Labels("etsn_sim_queue_depth_hwm", "link", `we"ird\link`+"\nname")).Set(3)
	h := reg.Histogram(obs.Labels("etsn_sim_slack_ns", "stream", "ect1"))
	for _, v := range []int64{1, 5, 900, 40_000, 40_001, 1 << 40} {
		h.Observe(v)
	}
	return reg
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// parseProm parses the text exposition into series name -> value,
// skipping comment lines. Series names keep their label block verbatim.
func parseProm(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("exposition value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsMatchesPrometheus is the /api/metrics <-> /metrics contract:
// every point in the JSON snapshot appears in the Prometheus exposition
// with the same name and value, histograms round-trip through the
// cumulative le series, and nothing in the exposition is missing from
// the snapshot.
func TestMetricsMatchesPrometheus(t *testing.T) {
	reg := fixtureRegistry()
	ts := httptest.NewServer(NewServer(Options{Registry: reg}).Handler())
	defer ts.Close()

	var snap Snapshot
	getJSON(t, ts, "/api/metrics", &snap)

	// The exposition comes from the server's own /metrics endpoint, so
	// this doubles as the route test for the standalone-CLI scrape path.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	var promText strings.Builder
	if err := reg.WritePrometheus(&promText); err != nil {
		t.Fatal(err)
	}
	if promText.String() != string(body) {
		t.Fatalf("served /metrics differs from WritePrometheus output")
	}
	prom := parseProm(t, promText.String())

	seriesSeen := 0
	for _, p := range append(append([]Point{}, snap.Counters...), snap.Gauges...) {
		got, ok := prom[p.Name]
		if !ok {
			t.Errorf("snapshot point %q missing from exposition", p.Name)
			continue
		}
		if got != p.Value {
			t.Errorf("%q: snapshot %d, exposition %d", p.Name, p.Value, got)
		}
		seriesSeen++
	}
	for _, hp := range snap.Histograms {
		base, labels, _ := strings.Cut(hp.Name, "{")
		if labels != "" {
			labels = "{" + labels
		}
		suffix := func(kind string) string { return base + kind + labels }
		if got := prom[suffix("_sum")]; got != hp.Sum {
			t.Errorf("%s_sum: snapshot %d, exposition %d", base, hp.Sum, got)
		}
		if got := prom[suffix("_count")]; got != hp.Count {
			t.Errorf("%s_count: snapshot %d, exposition %d", base, hp.Count, got)
		}
		seriesSeen += 2
		// The snapshot's buckets are per-bucket counts; the exposition's
		// le series are cumulative. Re-cumulate and compare.
		var cum int64
		lp := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		if lp != "" {
			lp += ","
		}
		for _, b := range hp.Buckets {
			cum += b.Count
			name := fmt.Sprintf("%s_bucket{%sle=\"%d\"}", base, lp, b.Le)
			if got, ok := prom[name]; !ok || got != cum {
				t.Errorf("%s: snapshot cumulative %d, exposition %d (present %v)", name, cum, got, ok)
			}
			seriesSeen++
		}
		inf := fmt.Sprintf("%s_bucket{%sle=\"+Inf\"}", base, lp)
		if got := prom[inf]; got != hp.Count {
			t.Errorf("%s: want %d, got %d", inf, hp.Count, got)
		}
		seriesSeen++
	}
	if seriesSeen != len(prom) {
		t.Errorf("exposition has %d series, snapshot accounts for %d — the two views diverge", len(prom), seriesSeen)
	}
}

// TestSnapshotRoundTripsHostileNames: label values containing the
// characters the exposition escapes come back verbatim in the JSON view.
func TestSnapshotRoundTripsHostileNames(t *testing.T) {
	hostile := "we\"ird\\link\nname"
	reg := obs.NewRegistry()
	reg.Gauge(obs.Labels("etsn_sim_queue_depth_hwm", "link", hostile)).Set(3)
	snap := BuildSnapshot(reg, 1, "")
	if len(snap.Gauges) != 1 {
		t.Fatalf("got %d gauges", len(snap.Gauges))
	}
	g := snap.Gauges[0]
	if g.Base != "etsn_sim_queue_depth_hwm" || g.Labels["link"] != hostile {
		t.Fatalf("hostile label did not round-trip: %+v", g)
	}
}

func TestTenantFilter(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.Labels("etsn_service_tenant_jobs_total", "tenant", "plant-a", "state", "done")).Add(4)
	reg.Counter(obs.Labels("etsn_service_tenant_jobs_total", "tenant", "plant-b", "state", "done")).Add(9)
	reg.Counter("etsn_service_jobs_total").Add(13)
	ts := httptest.NewServer(NewServer(Options{Registry: reg}).Handler())
	defer ts.Close()

	var snap Snapshot
	getJSON(t, ts, "/api/metrics?tenant=plant-a", &snap)
	if len(snap.Counters) != 1 {
		t.Fatalf("tenant view must keep only tenant-labeled points: %+v", snap.Counters)
	}
	c := snap.Counters[0]
	if c.Labels["tenant"] != "plant-a" || c.Value != 4 {
		t.Fatalf("wrong tenant point: %+v", c)
	}
}

func TestIndexServed(t *testing.T) {
	ts := httptest.NewServer(NewServer(Options{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/", "/index.html"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if !strings.Contains(string(body), "<!DOCTYPE html>") || !strings.Contains(string(body), "E-TSN") {
			t.Fatalf("GET %s: not the embedded dashboard page", path)
		}
	}
}

// TestStreamDeliversFrames: the SSE endpoint delivers at least two
// metrics frames with increasing sequence numbers while the registry
// mutates underneath, and a drain produces the bye event.
func TestStreamDeliversFrames(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(Options{Registry: reg, StreamInterval: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Counter("etsn_sim_events_total").Inc()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	resp, err := ts.Client().Get(ts.URL + "/api/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []Snapshot
	var event string
	sawBye := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			if event == "bye" {
				sawBye = true
			}
		case strings.HasPrefix(line, "data: ") && event == "metrics":
			var snap Snapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("bad SSE frame: %v", err)
			}
			frames = append(frames, snap)
			if len(frames) == 3 {
				// Drain the server: the stream must end with a bye frame.
				srv.Close()
			}
		}
		if sawBye {
			break
		}
	}
	if len(frames) < 2 {
		t.Fatalf("want >= 2 SSE frames, got %d", len(frames))
	}
	if !sawBye {
		t.Fatal("graceful drain must send the bye event")
	}
	if frames[1].Seq <= frames[0].Seq {
		t.Fatalf("frame seq must increase: %d then %d", frames[0].Seq, frames[1].Seq)
	}
	last := frames[len(frames)-1]
	if len(last.Counters) != 1 || last.Counters[0].Value < 1 {
		t.Fatalf("frames must carry the live counter: %+v", last.Counters)
	}
}

// TestTrendEndpointMatchesCLIOutput: /api/trend is byte-for-byte the
// document WriteTrendJSON produces (the same encoder etsn-bench -trend
// -json uses) on the same history file.
func TestTrendEndpointMatchesCLIOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	lines := []string{
		`{"experiment":"headline","wall_ms":100,"parallel":4,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":102,"parallel":4,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":140,"parallel":4,"seed":1,"unix_ms":3}`,
		`{"experiment":"smt","wall_ms":50,"parallel":1,"seed":1,"unix_ms":4}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(Options{HistoryPath: path}).Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/api/trend")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	reports, err := AnalyzeTrendFile(path, DefaultTrendThreshold)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := WriteTrendJSON(&want, reports, DefaultTrendThreshold); err != nil {
		t.Fatal(err)
	}
	if string(body) != want.String() {
		t.Fatalf("/api/trend diverges from WriteTrendJSON:\nendpoint:\n%s\nlibrary:\n%s", body, want.String())
	}
}

func TestTrendEndpointEmptyWithoutHistory(t *testing.T) {
	ts := httptest.NewServer(NewServer(Options{}).Handler())
	defer ts.Close()
	var doc struct {
		Experiments []TrendReport `json:"experiments"`
	}
	getJSON(t, ts, "/api/trend", &doc)
	if doc.Experiments == nil || len(doc.Experiments) != 0 {
		t.Fatalf("want empty experiments array, got %+v", doc)
	}
}

func TestSpansAndLanesEndpoints(t *testing.T) {
	tracer := obs.NewTracer()
	sp := tracer.Begin("schedule", "backend", "smt")
	sp.End()
	srv := NewServer(Options{Tracer: tracer})
	srv.SetLanes(func() []obs.Lane {
		return []obs.Lane{{Track: "SW1->SW2", Spans: []obs.LaneSpan{{Name: "ect1", StartNs: 10, DurNs: 5}}}}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var spans struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, ts, "/api/spans", &spans)
	if len(spans.Spans) != 1 || spans.Spans[0].Name != "schedule" {
		t.Fatalf("spans: %+v", spans)
	}

	var lanes struct {
		Lanes []laneJSON `json:"lanes"`
	}
	getJSON(t, ts, "/api/lanes", &lanes)
	if len(lanes.Lanes) != 1 || lanes.Lanes[0].Track != "SW1->SW2" || len(lanes.Lanes[0].Spans) != 1 {
		t.Fatalf("lanes: %+v", lanes)
	}
}

func TestPublishSwapsLiveSource(t *testing.T) {
	first := obs.NewRegistry()
	first.Counter("etsn_bench_runs_total").Add(1)
	srv := NewServer(Options{Registry: first})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	second := obs.NewRegistry()
	second.Counter("etsn_bench_runs_total").Add(2)
	srv.Publish(second, nil)

	var snap Snapshot
	getJSON(t, ts, "/api/metrics", &snap)
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 2 {
		t.Fatalf("Publish must swap the live registry: %+v", snap.Counters)
	}
}

// TestRunnerLifecycle: Start binds a real listener, serves the API, and
// Shutdown drains without leaking the serve goroutine — even with an SSE
// client mid-stream.
func TestRunnerLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := NewServer(Options{Registry: fixtureRegistry(), StreamInterval: 50 * time.Millisecond})
	r, err := Start("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + r.Addr()

	resp, err := http.Get(url + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/metrics via runner: %s", resp.Status)
	}

	// Park an SSE client on the stream so Shutdown has something to drain.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get(url + "/api/metrics/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
	}()
	time.Sleep(100 * time.Millisecond)

	if err := r.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	select {
	case <-streamDone:
	case <-time.After(2 * time.Second):
		t.Fatal("SSE client still connected after Shutdown")
	}
	if _, err := http.Get(url + "/api/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}

	// The serve goroutine and the drained handlers must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
}
