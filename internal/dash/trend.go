// Package dash serves a live observability dashboard over the repo's
// obs layer: JSON snapshots and an SSE stream of any live *obs.Registry,
// the phase tracer's spans, attributed frame lanes, and the
// bench/history.jsonl wall-time trajectory with the rolling-median
// regression analysis — plus a dependency-free single-page frontend
// embedded in the binary (see static/index.html).
//
// The package has two consumers: the CLIs (etsn-sim, etsn-bench,
// etsn-sched gain a -dash flag that serves the dashboard while a run is
// in flight and drains it on SIGINT/SIGTERM), and the etsn-cncd daemon,
// which mounts the same handler next to its /metrics endpoint with
// per-tenant registry views. The trend analyzer here is the single
// source of truth for regression verdicts: `etsn-bench -trend` (text
// and -json), the /api/trend endpoint, and the dashboard chart all
// consume it, so their outputs agree byte for byte.
package dash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// HistoryEntry mirrors one line of bench/history.jsonl, appended per
// completed experiment by etsn-bench -history (experiments.AppendHistory).
type HistoryEntry struct {
	Experiment string `json:"experiment"`
	WallMs     int64  `json:"wall_ms"`
	Parallel   int    `json:"parallel"`
	Seed       int64  `json:"seed"`
	UnixMs     int64  `json:"unix_ms"`
}

// TrendWindow bounds the rolling baseline: the median of up to this many
// runs immediately preceding the latest one.
const TrendWindow = 5

// DefaultTrendThreshold flags runs more than this fraction over their
// rolling-median baseline.
const DefaultTrendThreshold = 0.10

// TrendReport is one experiment's regression verdict from a history
// file. The JSON field names are the machine contract shared by
// `etsn-bench -trend -json` and the dashboard's /api/trend endpoint.
type TrendReport struct {
	// Name is the experiment name.
	Name string `json:"name"`
	// N is the total number of history runs for this experiment.
	N int `json:"n"`
	// MedianMs is the rolling baseline: the median wall time of up to
	// TrendWindow runs preceding the latest (0 on a first run).
	MedianMs int64 `json:"median_ms"`
	// LastMs is the newest run's wall time.
	LastMs int64 `json:"last_ms"`
	// DeltaPct is 100*(LastMs/MedianMs - 1), rounded to one decimal
	// (0 when there is no baseline).
	DeltaPct float64 `json:"delta_pct"`
	// Flagged marks a regression: DeltaPct above the threshold.
	Flagged bool `json:"flagged"`
}

// ReadHistory parses a history stream (one JSON object per line).
// Blank lines are skipped; lines without an experiment name or a
// positive wall time are dropped (they carry nothing to trend).
func ReadHistory(r io.Reader) ([]HistoryEntry, error) {
	var out []HistoryEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("history line %q: %w", line, err)
		}
		if e.Experiment == "" || e.WallMs <= 0 {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ReadHistoryFile reads path with ReadHistory. A missing file is not an
// error: it yields an empty history, so a dashboard can serve before
// the first bench run ever lands.
func ReadHistoryFile(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return ReadHistory(f)
}

// AnalyzeTrend groups history entries by experiment (in first-seen
// order) and compares each experiment's newest wall time against the
// median of up to TrendWindow preceding runs. A median is robust to the
// occasional loaded-machine outlier that a mean would smear into the
// baseline. A run more than threshold over its baseline is flagged.
func AnalyzeTrend(entries []HistoryEntry, threshold float64) []TrendReport {
	byExp := make(map[string][]HistoryEntry)
	var order []string
	for _, e := range entries {
		if _, seen := byExp[e.Experiment]; !seen {
			order = append(order, e.Experiment)
		}
		byExp[e.Experiment] = append(byExp[e.Experiment], e)
	}
	var out []TrendReport
	for _, name := range order {
		runs := byExp[name]
		latest := runs[len(runs)-1]
		rep := TrendReport{Name: name, LastMs: latest.WallMs, N: len(runs)}
		prior := runs[:len(runs)-1]
		if len(prior) > TrendWindow {
			prior = prior[len(prior)-TrendWindow:]
		}
		if len(prior) > 0 {
			walls := make([]int64, len(prior))
			for i, e := range prior {
				walls[i] = e.WallMs
			}
			sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
			rep.MedianMs = walls[len(walls)/2]
			ratio := float64(rep.LastMs) / float64(rep.MedianMs)
			rep.DeltaPct = math.Round((ratio-1)*1000) / 10
			rep.Flagged = ratio > 1+threshold
		}
		out = append(out, rep)
	}
	return out
}

// AnalyzeTrendFile reads a history file and analyzes it. A missing file
// yields no reports and no error (see ReadHistoryFile).
func AnalyzeTrendFile(path string, threshold float64) ([]TrendReport, error) {
	entries, err := ReadHistoryFile(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeTrend(entries, threshold), nil
}

// trendDoc is the machine-readable trend document. Experiments is never
// null so consumers can always range over it.
type trendDoc struct {
	ThresholdPct float64       `json:"threshold_pct"`
	Flagged      int           `json:"flagged"`
	Experiments  []TrendReport `json:"experiments"`
}

// WriteTrendJSON renders the verdicts as the machine-readable trend
// document. This single encoder backs both `etsn-bench -trend -json`
// and the dashboard's /api/trend endpoint, so the two are byte-for-byte
// identical on the same history.
func WriteTrendJSON(w io.Writer, reports []TrendReport, threshold float64) error {
	doc := trendDoc{
		ThresholdPct: math.Round(threshold*1000) / 10,
		Experiments:  reports,
	}
	if doc.Experiments == nil {
		doc.Experiments = []TrendReport{}
	}
	for _, r := range reports {
		if r.Flagged {
			doc.Flagged++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// FlaggedCount counts the flagged reports.
func FlaggedCount(reports []TrendReport) int {
	n := 0
	for _, r := range reports {
		if r.Flagged {
			n++
		}
	}
	return n
}

// WriteTrendText renders the human verdicts in the historical
// `etsn-bench -trend` format: one line per experiment, REGRESSED lines
// for flagged runs. header names the analyzed source (a path).
func WriteTrendText(w io.Writer, header string, reports []TrendReport, threshold float64) {
	fmt.Fprintf(w, "wall-time trend (%s, threshold +%.0f%%)\n", header, threshold*100)
	for _, r := range reports {
		switch {
		case r.MedianMs == 0:
			fmt.Fprintf(w, "  %-10s %6dms  (first run, no baseline)\n", r.Name, r.LastMs)
		case r.Flagged:
			fmt.Fprintf(w, "  %-10s %6dms  REGRESSED %.0f%% over baseline %dms (%d runs)\n",
				r.Name, r.LastMs, r.DeltaPct, r.MedianMs, r.N)
		default:
			fmt.Fprintf(w, "  %-10s %6dms  ok (%+.0f%% vs baseline %dms, %d runs)\n",
				r.Name, r.LastMs, r.DeltaPct, r.MedianMs, r.N)
		}
	}
}
