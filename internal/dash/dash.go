package dash

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"etsn/internal/obs"
)

//go:embed static
var staticFS embed.FS

// Options configures a dashboard Server. The zero value is serviceable:
// a nil registry serves empty snapshots until Publish swaps a live one
// in.
type Options struct {
	// Registry is the initial metrics source (may be nil; see Publish).
	Registry *obs.Registry
	// Tracer is the initial phase-span source for /api/spans (may be nil).
	Tracer *obs.Tracer
	// Lanes, when set, supplies attributed frame lanes for /api/lanes.
	Lanes func() []obs.Lane
	// HistoryPath points at a bench/history.jsonl-format file backing
	// /api/trend and /api/history. Empty (or missing on disk) serves an
	// empty trend document.
	HistoryPath string
	// TrendThreshold flags runs over their rolling median by more than
	// this fraction (default DefaultTrendThreshold).
	TrendThreshold float64
	// StreamInterval is the SSE frame cadence (default 1s, floor 50ms).
	StreamInterval time.Duration
}

// Server exposes a live obs.Registry/Tracer over HTTP: JSON snapshots,
// an SSE stream, spans, lanes, the trend analysis, and the embedded
// single-page frontend. Safe for concurrent use; the live source can be
// swapped mid-flight with Publish (etsn-bench swaps a fresh registry in
// per experiment).
type Server struct {
	mu      sync.RWMutex
	reg     *obs.Registry
	tracer  *obs.Tracer
	lanes   func() []obs.Lane
	history string

	threshold float64
	interval  time.Duration

	seq       atomic.Int64
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer builds a dashboard server from opts.
func NewServer(opts Options) *Server {
	if opts.TrendThreshold <= 0 {
		opts.TrendThreshold = DefaultTrendThreshold
	}
	if opts.StreamInterval <= 0 {
		opts.StreamInterval = time.Second
	}
	if opts.StreamInterval < 50*time.Millisecond {
		opts.StreamInterval = 50 * time.Millisecond
	}
	return &Server{
		reg:       opts.Registry,
		tracer:    opts.Tracer,
		lanes:     opts.Lanes,
		history:   opts.HistoryPath,
		threshold: opts.TrendThreshold,
		interval:  opts.StreamInterval,
		done:      make(chan struct{}),
	}
}

// Publish swaps the live metrics and span sources. Open SSE streams
// pick the new source up on their next frame.
func (s *Server) Publish(reg *obs.Registry, tracer *obs.Tracer) {
	s.mu.Lock()
	s.reg = reg
	s.tracer = tracer
	s.mu.Unlock()
}

// SetLanes swaps the frame-lane source (nil clears it).
func (s *Server) SetLanes(fn func() []obs.Lane) {
	s.mu.Lock()
	s.lanes = fn
	s.mu.Unlock()
}

// Close begins the graceful drain: open SSE streams finish their
// current frame and return. Idempotent. The HTTP listener itself
// belongs to the caller (Runner.Shutdown closes both in order).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// source returns the current registry, tracer, and lane function.
func (s *Server) source() (*obs.Registry, *obs.Tracer, func() []obs.Lane) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg, s.tracer, s.lanes
}

// Handler routes the dashboard surface:
//
//	GET /                    embedded single-page frontend
//	GET /api/metrics         one-shot Snapshot JSON (?tenant= filters)
//	GET /api/metrics/stream  SSE: one Snapshot frame per interval
//	GET /api/spans           completed tracer spans
//	GET /api/lanes           attributed frame lanes (empty without a source)
//	GET /api/trend           trend verdicts (= `etsn-bench -trend -json`)
//	GET /api/history         raw wall-time history entries
//	GET /metrics             Prometheus exposition of the same registry
//
// The daemon mounts only /{$}, /index.html, and /api/ from this handler
// and keeps serving its own /metrics; the standalone CLIs get /metrics
// from here so a live sim/bench run is scrapeable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.serveIndex)
	mux.HandleFunc("GET /index.html", s.serveIndex)
	mux.HandleFunc("GET /metrics", s.servePrometheus)
	mux.HandleFunc("GET /api/metrics", s.serveMetrics)
	mux.HandleFunc("GET /api/metrics/stream", s.serveStream)
	mux.HandleFunc("GET /api/spans", s.serveSpans)
	mux.HandleFunc("GET /api/lanes", s.serveLanes)
	mux.HandleFunc("GET /api/trend", s.serveTrend)
	mux.HandleFunc("GET /api/history", s.serveHistory)
	return mux
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	page, err := staticFS.ReadFile("static/index.html")
	if err != nil {
		http.Error(w, "dashboard page missing from binary", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(page)
}

func (s *Server) snapshot(seq int64, tenant string) Snapshot {
	reg, _, _ := s.source()
	snap := BuildSnapshot(reg, time.Now().UnixMilli(), tenant)
	snap.Seq = seq
	return snap
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.snapshot(0, r.URL.Query().Get("tenant")))
}

func (s *Server) servePrometheus(w http.ResponseWriter, r *http.Request) {
	reg, _, _ := s.source()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// serveStream is the SSE endpoint: an immediate frame, then one per
// interval, until the client hangs up or the server drains. Each frame
// is one `event: metrics` record whose data line is a compact Snapshot.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	tenant := r.URL.Query().Get("tenant")
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		frame, err := json.Marshal(s.snapshot(s.seq.Add(1), tenant))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: metrics\ndata: %s\n\n", frame); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Graceful drain: tell the client this was deliberate so a
			// well-behaved EventSource can stop reconnecting.
			_, _ = io.WriteString(w, "event: bye\ndata: {}\n\n")
			fl.Flush()
			return
		case <-tick.C:
		}
	}
}

func (s *Server) serveSpans(w http.ResponseWriter, r *http.Request) {
	_, tracer, _ := s.source()
	spans := tracer.Spans()
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	writeJSON(w, map[string]any{"spans": spans})
}

func (s *Server) serveLanes(w http.ResponseWriter, r *http.Request) {
	_, _, lanes := s.source()
	var ls []obs.Lane
	if lanes != nil {
		ls = lanes()
	}
	writeJSON(w, map[string]any{"lanes": lanesToJSON(ls)})
}

func (s *Server) serveTrend(w http.ResponseWriter, r *http.Request) {
	var reports []TrendReport
	if s.history != "" {
		var err error
		reports, err = AnalyzeTrendFile(s.history, s.threshold)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = WriteTrendJSON(w, reports, s.threshold)
}

func (s *Server) serveHistory(w http.ResponseWriter, r *http.Request) {
	entries := []HistoryEntry{}
	if s.history != "" {
		es, err := ReadHistoryFile(s.history)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if es != nil {
			entries = es
		}
	}
	writeJSON(w, map[string]any{"entries": entries})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Runner ties a Server to a real listener for the CLIs' -dash flag: it
// serves in the background while a run is in flight and shuts down
// gracefully on demand or on SIGINT/SIGTERM. Signal delivery is armed
// inside Start, so a signal that arrives while the run is still going
// is held until WaitSignal collects it rather than killing the process.
type Runner struct {
	Server *Server
	http   *http.Server
	ln     net.Listener
	sigCh  chan os.Signal
	errCh  chan error
}

// Start listens on addr (":0" picks a free port) and serves srv's
// handler in the background.
func Start(addr string, srv *Server) (*Runner, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		Server: srv,
		http:   &http.Server{Handler: srv.Handler()},
		ln:     ln,
		sigCh:  make(chan os.Signal, 1),
		errCh:  make(chan error, 1),
	}
	signal.Notify(r.sigCh, os.Interrupt, syscall.SIGTERM)
	go func() { r.errCh <- r.http.Serve(ln) }()
	return r, nil
}

// Addr is the bound listen address (resolves ":0").
func (r *Runner) Addr() string { return r.ln.Addr().String() }

// WaitSignal blocks until SIGINT/SIGTERM (armed at Start) and returns
// the signal received.
func (r *Runner) WaitSignal() os.Signal { return <-r.sigCh }

// Shutdown drains: SSE streams are released first (Server.Close), then
// the HTTP server stops accepting and waits up to timeout for in-flight
// requests before closing hard.
func (r *Runner) Shutdown(timeout time.Duration) error {
	signal.Stop(r.sigCh)
	r.Server.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := r.http.Shutdown(ctx)
	if err != nil {
		_ = r.http.Close()
	}
	return err
}
