package qcc

import (
	"encoding/json"
	"io"
	"sort"

	"etsn/internal/gcl"
	"etsn/internal/model"
)

// SlotExport is one scheduled frame slot in the export document.
type SlotExport struct {
	Stream   string `json:"stream"`
	Index    int    `json:"index"`
	OffsetUs int64  `json:"offset_us"`
	LengthUs int64  `json:"length_us"`
	PeriodUs int64  `json:"period_us"`
	Epoch    int64  `json:"epoch,omitempty"`
	Priority int    `json:"priority"`
	Shared   bool   `json:"shared,omitempty"`
	Reserve  bool   `json:"reserve,omitempty"`
	Prob     bool   `json:"prob,omitempty"`
}

// LinkScheduleExport is the slot table of one directed link.
type LinkScheduleExport struct {
	Link  string       `json:"link"`
	Slots []SlotExport `json:"slots"`
}

// GCLEntryExport is one gate-control entry.
type GCLEntryExport struct {
	DurationNs int64 `json:"duration_ns"`
	// Gates is the open-gate bitmask (bit i = priority i).
	Gates uint8 `json:"gates"`
}

// PortGCLExport is one port's complete gate program.
type PortGCLExport struct {
	Link    string           `json:"link"`
	CycleNs int64            `json:"cycle_ns"`
	Entries []GCLEntryExport `json:"entries"`
}

// SolverExport is the SMT backend's cumulative search effort, present when
// an SMT backend produced the schedule (the placer leaves it out).
type SolverExport struct {
	Solves           int64 `json:"solves"`
	Decisions        int64 `json:"decisions"`
	Propagations     int64 `json:"propagations"`
	Conflicts        int64 `json:"conflicts"`
	TheoryChecks     int64 `json:"theory_checks"`
	Restarts         int64 `json:"restarts,omitempty"`
	Learned          int64 `json:"learned,omitempty"`
	TheoryProps      int64 `json:"theory_props,omitempty"`
	MaxDecisionLevel int64 `json:"max_decision_level,omitempty"`
}

// DeploymentExport is the JSON form of a CNC deployment.
type DeploymentExport struct {
	HyperperiodUs int64                `json:"hyperperiod_us"`
	Backend       string               `json:"backend"`
	Solver        *SolverExport        `json:"solver,omitempty"`
	Schedule      []LinkScheduleExport `json:"schedule"`
	GCLs          []PortGCLExport      `json:"gcls"`
}

// Export converts the deployment to its serializable form.
func (d *Deployment) Export() *DeploymentExport {
	out := &DeploymentExport{
		HyperperiodUs: int64(d.Result.Schedule.Hyperperiod.Microseconds()),
		Backend:       d.Result.BackendUsed.String(),
	}
	if st := d.Result.SolverStats; st.Solves > 0 {
		out.Solver = &SolverExport{
			Solves:           st.Solves,
			Decisions:        st.Decisions,
			Propagations:     st.Propagations,
			Conflicts:        st.Conflicts,
			TheoryChecks:     st.TheoryChecks,
			Restarts:         st.Restarts,
			Learned:          st.Learned,
			TheoryProps:      st.TheoryProps,
			MaxDecisionLevel: st.MaxDecisionLevel,
		}
	}
	for _, lid := range d.Result.Schedule.Links() {
		ls := LinkScheduleExport{Link: lid.String()}
		for _, fs := range d.Result.Schedule.SlotsOn(lid) {
			ls.Slots = append(ls.Slots, SlotExport{
				Stream:   string(fs.Stream),
				Index:    fs.Index,
				OffsetUs: fs.Offset,
				LengthUs: fs.Length,
				PeriodUs: fs.Period,
				Epoch:    fs.Epoch,
				Priority: fs.Priority,
				Shared:   fs.Shared,
				Reserve:  fs.Reserve,
				Prob:     fs.Prob,
			})
		}
		out.Schedule = append(out.Schedule, ls)
	}
	links := make([]model.LinkID, 0, len(d.GCLs))
	for lid := range d.GCLs {
		links = append(links, lid)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, lid := range links {
		g := d.GCLs[lid]
		pe := PortGCLExport{Link: lid.String(), CycleNs: int64(g.Cycle)}
		for _, e := range g.Entries {
			pe.Entries = append(pe.Entries, GCLEntryExport{
				DurationNs: int64(e.Duration),
				Gates:      uint8(e.Gates),
			})
		}
		out.GCLs = append(out.GCLs, pe)
	}
	return out
}

// WriteJSON writes the deployment export as indented JSON.
func (d *Deployment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Export())
}

// GateMaskOf is a small helper for consumers reading exports back.
func GateMaskOf(e GCLEntryExport) gcl.GateMask { return gcl.GateMask(e.Gates) }
