package qcc

import (
	"testing"
)

// FuzzParse feeds arbitrary bytes through the configuration parser and, when
// a document parses, through problem construction: neither may panic, and
// every accepted problem must carry valid streams.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleConfig))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network":{"devices":["a","b"],"switches":["s"],
		"links":[{"a":"a","b":"s","bandwidth_bps":1000000},
		         {"a":"b","b":"s","bandwidth_bps":1000000}]},
		"streams":[{"id":"x","talker":"a","listener":"b","type":"time-triggered",
		            "period_us":1000,"max_latency_us":1000,"payload_bytes":100}]}`))
	f.Add([]byte(`{"streams":[{"id":"x","type":"event-triggered","period_us":-5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		p, err := cfg.BuildProblem()
		if err != nil {
			return
		}
		for _, s := range p.TCT {
			if err := s.Validate(p.Network); err != nil {
				t.Fatalf("accepted invalid TCT stream: %v", err)
			}
		}
		for _, e := range p.ECT {
			if err := e.Validate(p.Network); err != nil {
				t.Fatalf("accepted invalid ECT stream: %v", err)
			}
		}
	})
}
