package qcc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes through the configuration parser and, when
// a document parses, through problem construction: neither may panic, and
// every accepted problem must carry valid streams.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleConfig))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network":{"devices":["a","b"],"switches":["s"],
		"links":[{"a":"a","b":"s","bandwidth_bps":1000000},
		         {"a":"b","b":"s","bandwidth_bps":1000000}]},
		"streams":[{"id":"x","talker":"a","listener":"b","type":"time-triggered",
		            "period_us":1000,"max_latency_us":1000,"payload_bytes":100}]}`))
	f.Add([]byte(`{"streams":[{"id":"x","type":"event-triggered","period_us":-5}]}`))
	// Semantic-validation seeds: zero/negative periods and payloads,
	// duplicate ids, self-talk, a sharing ECT.
	f.Add([]byte(`{"streams":[{"id":"x","talker":"a","listener":"b",
		"type":"time-triggered","period_us":0,"max_latency_us":10,"payload_bytes":10}]}`))
	f.Add([]byte(`{"streams":[{"id":"x","talker":"a","listener":"b",
		"type":"time-triggered","period_us":10,"max_latency_us":10,"payload_bytes":-3}]}`))
	f.Add([]byte(`{"streams":[{"id":"x","talker":"a","listener":"a",
		"type":"event-triggered","period_us":10,"max_latency_us":10,"payload_bytes":10}]}`))
	f.Add([]byte(`{"streams":[
		{"id":"x","talker":"a","listener":"b","type":"time-triggered",
		 "period_us":10,"max_latency_us":10,"payload_bytes":10},
		{"id":"x","talker":"b","listener":"a","type":"time-triggered",
		 "period_us":10,"max_latency_us":10,"payload_bytes":10}]}`))
	f.Add([]byte(`{"streams":[{"id":"x","talker":"a","listener":"b",
		"type":"event-triggered","period_us":10,"max_latency_us":10,
		"payload_bytes":10,"share":true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		p, err := cfg.BuildProblem()
		if err != nil {
			return
		}
		for _, s := range p.TCT {
			if err := s.Validate(p.Network); err != nil {
				t.Fatalf("accepted invalid TCT stream: %v", err)
			}
			if s.Period <= 0 || s.E2E <= 0 || s.LengthBytes <= 0 {
				t.Fatalf("accepted degenerate TCT stream: %+v", s)
			}
		}
		for _, e := range p.ECT {
			if err := e.Validate(p.Network); err != nil {
				t.Fatalf("accepted invalid ECT stream: %v", err)
			}
			if e.MinInterevent <= 0 || e.E2E <= 0 || e.LengthBytes <= 0 {
				t.Fatalf("accepted degenerate ECT stream: %+v", e)
			}
		}
	})
}

// FuzzParseDeployment feeds arbitrary bytes through the deployment importer:
// parsing, gate-program reconstruction, and semantic validation must never
// panic, and any export that validates must yield usable gate programs.
func FuzzParseDeployment(f *testing.F) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		f.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var valid strings.Builder
	if err := dep.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(valid.String()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"gcls":[{"link":"a->b","cycle_ns":1000,
		"entries":[{"duration_ns":1000,"gates":255}]}]}`))
	f.Add([]byte(`{"gcls":[{"link":"noarrow","cycle_ns":0,"entries":[{"duration_ns":-1}]}]}`))
	f.Add([]byte(`{"schedule":[{"link":"a->b","slots":[
		{"stream":"x","offset_us":0,"length_us":100,"period_us":620},
		{"stream":"y","offset_us":50,"length_us":100,"period_us":620}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := ParseDeployment(bytes.NewReader(data))
		if err != nil {
			return
		}
		gcls, gclErr := exp.GCLPrograms()
		if err := exp.Validate(dep.Network); err != nil {
			return
		}
		// A validated export must have reconstructible gate programs.
		if gclErr != nil {
			t.Fatalf("validated export with broken gate programs: %v", gclErr)
		}
		_ = gcls
	})
}
