package qcc

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"etsn/internal/gcl"
	"etsn/internal/model"
)

// ParseDeployment reads a deployment document written by
// Deployment.WriteJSON and reconstructs the per-port gate programs (the
// artifacts a switch consumes). The slot table is informational; the gate
// programs alone are sufficient to run a network.
func ParseDeployment(r io.Reader) (*DeploymentExport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	var exp DeploymentExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &exp, nil
}

// GCLs reconstructs the gate programs from the export, rejecting malformed
// ones: a bad link id, a non-positive cycle or entry duration, a duplicate
// port, or entries that do not tile the cycle exactly.
func (e *DeploymentExport) GCLPrograms() (map[model.LinkID]*gcl.PortGCL, error) {
	out := make(map[model.LinkID]*gcl.PortGCL, len(e.GCLs))
	for _, pe := range e.GCLs {
		lid, err := parseLinkID(pe.Link)
		if err != nil {
			return nil, err
		}
		if _, dup := out[lid]; dup {
			return nil, fmt.Errorf("%w: port %s has two gate programs", ErrBadDeployment, pe.Link)
		}
		if pe.CycleNs <= 0 {
			return nil, fmt.Errorf("%w: port %s cycle %d ns (want > 0)",
				ErrBadDeployment, pe.Link, pe.CycleNs)
		}
		g := &gcl.PortGCL{Link: lid, Cycle: time.Duration(pe.CycleNs)}
		var total time.Duration
		for i, entry := range pe.Entries {
			if entry.DurationNs <= 0 {
				return nil, fmt.Errorf("%w: port %s entry %d duration %d ns (want > 0)",
					ErrBadDeployment, pe.Link, i, entry.DurationNs)
			}
			g.Entries = append(g.Entries, gcl.Entry{
				Duration: time.Duration(entry.DurationNs),
				Gates:    gcl.GateMask(entry.Gates),
			})
			total += time.Duration(entry.DurationNs)
		}
		if total != g.Cycle {
			return nil, fmt.Errorf("%w: port %s entries sum to %v, cycle %v",
				ErrBadDeployment, pe.Link, total, g.Cycle)
		}
		out[lid] = g
	}
	return out, nil
}

// Validate cross-checks the export against a topology: every scheduled or
// gated link must exist, and the deterministic slots of each link (same
// period, not shared, no reservation or possibility semantics) must not
// overlap — overlapping hard slots mean two frames were promised the same
// wire time.
func (e *DeploymentExport) Validate(n *model.Network) error {
	if _, err := e.GCLPrograms(); err != nil {
		return err
	}
	for _, pe := range e.GCLs {
		lid, err := parseLinkID(pe.Link)
		if err != nil {
			return err
		}
		if _, ok := n.LinkByID(lid); !ok {
			return fmt.Errorf("%w: gate program for unknown link %s", ErrBadDeployment, pe.Link)
		}
	}
	for _, ls := range e.Schedule {
		lid, err := parseLinkID(ls.Link)
		if err != nil {
			return err
		}
		if _, ok := n.LinkByID(lid); !ok {
			return fmt.Errorf("%w: schedule for unknown link %s", ErrBadDeployment, ls.Link)
		}
		var hard []SlotExport
		for _, s := range ls.Slots {
			if s.PeriodUs <= 0 {
				return fmt.Errorf("%w: link %s stream %q slot period %d us (want > 0)",
					ErrBadDeployment, ls.Link, s.Stream, s.PeriodUs)
			}
			if s.LengthUs <= 0 {
				return fmt.Errorf("%w: link %s stream %q slot length %d us (want > 0)",
					ErrBadDeployment, ls.Link, s.Stream, s.LengthUs)
			}
			if !s.Shared && !s.Reserve && !s.Prob {
				hard = append(hard, s)
			}
		}
		// E-TSN overlaps possibilities with shared and reserved slots by
		// design; hard deterministic slots of one period must tile cleanly.
		for i := 0; i < len(hard); i++ {
			for j := i + 1; j < len(hard); j++ {
				a, b := hard[i], hard[j]
				if a.PeriodUs != b.PeriodUs || a.Epoch != b.Epoch {
					continue
				}
				ao, bo := a.OffsetUs%a.PeriodUs, b.OffsetUs%b.PeriodUs
				if ao < bo+b.LengthUs && bo < ao+a.LengthUs {
					return fmt.Errorf("%w: link %s: slots of %q and %q overlap at %d us",
						ErrBadDeployment, ls.Link, a.Stream, b.Stream, ao)
				}
			}
		}
	}
	return nil
}

// parseLinkID parses the "from->to" form used by LinkID.String.
func parseLinkID(s string) (model.LinkID, error) {
	lid, err := model.ParseLinkID(s)
	if err != nil {
		return model.LinkID{}, fmt.Errorf("%w: %v", ErrBadDeployment, err)
	}
	return lid, nil
}
