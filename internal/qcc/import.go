package qcc

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"etsn/internal/gcl"
	"etsn/internal/model"
)

// ParseDeployment reads a deployment document written by
// Deployment.WriteJSON and reconstructs the per-port gate programs (the
// artifacts a switch consumes). The slot table is informational; the gate
// programs alone are sufficient to run a network.
func ParseDeployment(r io.Reader) (*DeploymentExport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	var exp DeploymentExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &exp, nil
}

// GCLs reconstructs the gate programs from the export.
func (e *DeploymentExport) GCLPrograms() (map[model.LinkID]*gcl.PortGCL, error) {
	out := make(map[model.LinkID]*gcl.PortGCL, len(e.GCLs))
	for _, pe := range e.GCLs {
		lid, err := parseLinkID(pe.Link)
		if err != nil {
			return nil, err
		}
		g := &gcl.PortGCL{Link: lid, Cycle: time.Duration(pe.CycleNs)}
		var total time.Duration
		for _, entry := range pe.Entries {
			g.Entries = append(g.Entries, gcl.Entry{
				Duration: time.Duration(entry.DurationNs),
				Gates:    gcl.GateMask(entry.Gates),
			})
			total += time.Duration(entry.DurationNs)
		}
		if total != g.Cycle {
			return nil, fmt.Errorf("%w: port %s entries sum to %v, cycle %v",
				ErrBadConfig, pe.Link, total, g.Cycle)
		}
		out[lid] = g
	}
	return out, nil
}

// parseLinkID parses the "from->to" form used by LinkID.String.
func parseLinkID(s string) (model.LinkID, error) {
	from, to, ok := strings.Cut(s, "->")
	if !ok || from == "" || to == "" {
		return model.LinkID{}, fmt.Errorf("%w: bad link id %q", ErrBadConfig, s)
	}
	return model.LinkID{From: model.NodeID(from), To: model.NodeID(to)}, nil
}
