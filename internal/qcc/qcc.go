// Package qcc implements the configuration plane of IEEE 802.1Qcc at the
// level E-TSN plugs into (paper Fig. 5): stream requirements collected by a
// Centralized User Configuration (CUC) are handed to a Centralized Network
// Configuration (CNC), which knows the topology, runs the scheduler, and
// distributes per-port Gate Control Lists to the switches.
//
// Configurations are JSON documents (standing in for the standard's
// YANG/NETCONF encoding) so the cmd tools can drive the whole pipeline from
// files.
package qcc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"etsn/internal/core"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/obs"
)

// Sentinel errors. ErrBadStream and ErrBadDeployment wrap ErrBadConfig, so
// errors.Is(err, ErrBadConfig) keeps matching everything this package
// rejects while callers can still tell the three apart.
var (
	// ErrBadConfig marks an unusable configuration document.
	ErrBadConfig = errors.New("invalid qcc configuration")
	// ErrBadStream marks a semantically invalid stream requirement (zero or
	// negative period, missing endpoints, duplicate id, ...).
	ErrBadStream = fmt.Errorf("%w: invalid stream requirement", ErrBadConfig)
	// ErrBadDeployment marks an unusable deployment export (unknown link
	// ids, malformed gate programs, overlapping slots).
	ErrBadDeployment = fmt.Errorf("%w: invalid deployment", ErrBadConfig)
)

// Stream requirement types.
const (
	// TypeTimeTriggered marks TCT requirements.
	TypeTimeTriggered = "time-triggered"
	// TypeEventTriggered marks ECT requirements.
	TypeEventTriggered = "event-triggered"
)

// LinkConfig describes one full-duplex link.
type LinkConfig struct {
	// A and B are the endpoints.
	A string `json:"a"`
	B string `json:"b"`
	// BandwidthBps is the link speed in bits per second.
	BandwidthBps int64 `json:"bandwidth_bps"`
	// PropDelayNs is the one-way propagation delay in nanoseconds.
	PropDelayNs int64 `json:"prop_delay_ns,omitempty"`
	// TimeUnitNs is the scheduling granularity in nanoseconds; zero means
	// the model default (1 us).
	TimeUnitNs int64 `json:"time_unit_ns,omitempty"`
}

// NetworkConfig describes the topology.
type NetworkConfig struct {
	// Devices and Switches list the node names.
	Devices  []string     `json:"devices"`
	Switches []string     `json:"switches"`
	Links    []LinkConfig `json:"links"`
}

// StreamRequirement is one stream's user configuration (Qcc 46.2 talker and
// listener groups, flattened).
type StreamRequirement struct {
	// ID names the stream.
	ID string `json:"id"`
	// Talker and Listener are the endpoint devices.
	Talker   string `json:"talker"`
	Listener string `json:"listener"`
	// Type is time-triggered or event-triggered.
	Type string `json:"type"`
	// PeriodUs is the period (TCT) or minimum interevent time (ECT) in
	// microseconds.
	PeriodUs int64 `json:"period_us"`
	// MaxLatencyUs is the end-to-end deadline in microseconds.
	MaxLatencyUs int64 `json:"max_latency_us"`
	// PayloadBytes is the message size.
	PayloadBytes int `json:"payload_bytes"`
	// Share marks a TCT stream that offers its slots to ECT.
	Share bool `json:"share,omitempty"`
}

// Validate applies the semantic checks a CUC must pass before the CNC will
// route a requirement: JSON that decodes is not necessarily a stream. i is
// the requirement's position, used to name streams that have no id yet.
func (r *StreamRequirement) Validate(i int) error { return r.validate(i) }

// validate applies the semantic checks a CUC must pass before the CNC will
// route a requirement: JSON that decodes is not necessarily a stream.
func (r *StreamRequirement) validate(i int) error {
	switch {
	case r.ID == "":
		return fmt.Errorf("%w: stream %d has no id", ErrBadStream, i)
	case r.Talker == "":
		return fmt.Errorf("%w: stream %q has no talker", ErrBadStream, r.ID)
	case r.Listener == "":
		return fmt.Errorf("%w: stream %q has no listener", ErrBadStream, r.ID)
	case r.Talker == r.Listener:
		return fmt.Errorf("%w: stream %q talks to itself", ErrBadStream, r.ID)
	case r.Type != TypeTimeTriggered && r.Type != TypeEventTriggered:
		return fmt.Errorf("%w: stream %q: unknown type %q", ErrBadStream, r.ID, r.Type)
	case r.PeriodUs <= 0:
		return fmt.Errorf("%w: stream %q: period %d us (want > 0)", ErrBadStream, r.ID, r.PeriodUs)
	case r.MaxLatencyUs <= 0:
		return fmt.Errorf("%w: stream %q: max latency %d us (want > 0)", ErrBadStream, r.ID, r.MaxLatencyUs)
	case r.PayloadBytes <= 0:
		return fmt.Errorf("%w: stream %q: payload %d bytes (want > 0)", ErrBadStream, r.ID, r.PayloadBytes)
	case r.Share && r.Type != TypeTimeTriggered:
		return fmt.Errorf("%w: stream %q: only time-triggered streams can share slots", ErrBadStream, r.ID)
	}
	return nil
}

// SchedulerOptions carries the E-TSN tuning knobs.
type SchedulerOptions struct {
	// NProb is the possibilities-per-ECT count.
	NProb int `json:"n_prob,omitempty"`
	// Backend selects the scheduling strategy: "auto", "placer", "greedy",
	// "tabu", "anneal", "smt", "smt-incremental", or "race" (all enabled
	// backends racing, highest-priority verified plan wins). Empty means
	// auto; the scheduling daemon defaults submitted jobs to "race".
	Backend string `json:"backend,omitempty"`
	// Spread staggers TCT placement over the period.
	Spread bool `json:"spread,omitempty"`
	// SharedReserves enables the per-link drain-stream reservation mode.
	SharedReserves bool `json:"shared_reserves,omitempty"`
	// Routing lets the CNC reroute streams over alternate paths when
	// their shortest path cannot be scheduled (joint routing lite).
	Routing bool `json:"routing,omitempty"`
	// MinimizeECT asks the SMT backends to optimize the worst
	// per-possibility ECT latency rather than stop at the first
	// satisfying schedule.
	MinimizeECT bool `json:"minimize_ect,omitempty"`
	// Portfolio runs this many diversified replicas of the monolithic SMT
	// search and takes the first definitive answer (values <= 1 keep the
	// single deterministic search). The incremental backend ignores it.
	Portfolio int `json:"portfolio,omitempty"`
	// TimeoutMs bounds the scheduler's wall-clock budget in milliseconds
	// (core.Options.Timeout); zero means unlimited. The scheduling daemon
	// overrides it with the per-job deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Decompose splits the solve into the connected components of the
	// stream conflict graph, solved independently (in parallel, each
	// through the selected backend) and merged under a final verifier
	// re-check (core.Options.Decompose).
	Decompose bool `json:"decompose,omitempty"`
}

// Config is a complete configuration document.
type Config struct {
	Network NetworkConfig       `json:"network"`
	Streams []StreamRequirement `json:"streams"`
	Options SchedulerOptions    `json:"options,omitempty"`
	// Obs and Phases are runtime-only instrumentation hooks set by the
	// CLIs; they are not part of the configuration document.
	Obs    *obs.Registry `json:"-"`
	Phases *obs.Tracer   `json:"-"`
}

// Parse decodes a configuration document.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &c, nil
}

// Load decodes a configuration document from a reader.
func Load(r io.Reader) (*Config, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return Parse(data)
}

// Save encodes the configuration as indented JSON.
func (c *Config) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// BuildNetwork materializes the topology.
func (c *Config) BuildNetwork() (*model.Network, error) {
	n := model.NewNetwork()
	for _, d := range c.Network.Devices {
		if err := n.AddDevice(model.NodeID(d)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	for _, sw := range c.Network.Switches {
		if err := n.AddSwitch(model.NodeID(sw)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	for _, l := range c.Network.Links {
		err := n.AddLink(model.NodeID(l.A), model.NodeID(l.B), model.LinkConfig{
			Bandwidth: l.BandwidthBps,
			PropDelay: time.Duration(l.PropDelayNs),
			TimeUnit:  time.Duration(l.TimeUnitNs),
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return n, nil
}

// BuildProblem routes every stream requirement over the topology and
// assembles the scheduling problem.
func (c *Config) BuildProblem() (*core.Problem, error) {
	network, err := c.BuildNetwork()
	if err != nil {
		return nil, err
	}
	opts, err := c.coreOptions()
	if err != nil {
		return nil, err
	}
	p := &core.Problem{Network: network, Opts: opts}
	p.TCT, p.ECT, err = BuildStreams(network, c.Streams)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// BuildStreams validates and routes a batch of stream requirements over an
// existing topology (shortest paths). It is the requirement-to-model step
// of BuildProblem factored out so incremental admission — adding streams to
// an already-deployed network — can reuse it.
func BuildStreams(network *model.Network, reqs []StreamRequirement) ([]*model.Stream, []*model.ECT, error) {
	var tct []*model.Stream
	var ect []*model.ECT
	seen := make(map[string]bool, len(reqs))
	for i := range reqs {
		req := &reqs[i]
		if err := req.validate(i); err != nil {
			return nil, nil, err
		}
		if seen[req.ID] {
			return nil, nil, fmt.Errorf("%w: duplicate stream id %q", ErrBadStream, req.ID)
		}
		seen[req.ID] = true
		path, err := network.ShortestPath(model.NodeID(req.Talker), model.NodeID(req.Listener))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: stream %q: %v", ErrBadStream, req.ID, err)
		}
		period := time.Duration(req.PeriodUs) * time.Microsecond
		e2e := time.Duration(req.MaxLatencyUs) * time.Microsecond
		switch req.Type {
		case TypeTimeTriggered:
			tct = append(tct, &model.Stream{
				ID:          model.StreamID(req.ID),
				Path:        path,
				E2E:         e2e,
				LengthBytes: req.PayloadBytes,
				Period:      period,
				Type:        model.StreamDet,
				Share:       req.Share,
			})
		case TypeEventTriggered:
			ect = append(ect, &model.ECT{
				ID:            model.StreamID(req.ID),
				Path:          path,
				E2E:           e2e,
				LengthBytes:   req.PayloadBytes,
				MinInterevent: period,
			})
		default:
			return nil, nil, fmt.Errorf("%w: stream %q: unknown type %q", ErrBadConfig, req.ID, req.Type)
		}
	}
	return tct, ect, nil
}

func (c *Config) coreOptions() (core.Options, error) {
	opts := core.Options{
		NProb:          c.Options.NProb,
		SpreadFrames:   c.Options.Spread,
		SharedReserves: c.Options.SharedReserves,
		MinimizeECT:    c.Options.MinimizeECT,
		Portfolio:      c.Options.Portfolio,
		Decompose:      c.Options.Decompose,
		Timeout:        time.Duration(c.Options.TimeoutMs) * time.Millisecond,
		Obs:            c.Obs,
		Phases:         c.Phases,
	}
	b, err := core.ParseBackend(c.Options.Backend)
	if err != nil {
		return core.Options{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	opts.Backend = b
	return opts, nil
}

// Deployment is the CNC output: the verified schedule and the per-port gate
// programs ready for distribution.
type Deployment struct {
	// Network is the materialized topology.
	Network *model.Network
	// Problem is the assembled scheduling problem.
	Problem *core.Problem
	// Result is the scheduling result.
	Result *core.Result
	// GCLs maps each directed link to its port's gate program.
	GCLs map[model.LinkID]*gcl.PortGCL
}

// Compute runs the full CNC pipeline: build the problem, schedule with
// E-TSN, verify independently, and compile GCLs with prioritized slot
// sharing.
func Compute(cfg *Config) (*Deployment, error) {
	p, err := cfg.BuildProblem()
	if err != nil {
		return nil, err
	}
	var res *core.Result
	if cfg.Options.Routing {
		var routed *core.Problem
		res, routed, err = core.ScheduleWithRouting(p, 3)
		if err == nil {
			p = routed
		}
	} else {
		res, err = core.Schedule(p)
	}
	if err != nil {
		return nil, fmt.Errorf("cnc scheduling: %w", err)
	}
	if vs := core.Verify(p.Network, res); len(vs) != 0 {
		return nil, fmt.Errorf("cnc verification: %s", vs[0])
	}
	gcls, err := gcl.Synthesize(res.Schedule, gcl.Config{OpenECTOnShared: true})
	if err != nil {
		return nil, fmt.Errorf("cnc gcl synthesis: %w", err)
	}
	return &Deployment{Network: p.Network, Problem: p, Result: res, GCLs: gcls}, nil
}
