package qcc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"etsn/internal/model"
)

// sampleConfig is the paper's Fig. 2 network with one sharing TCT stream
// and one ECT stream, as a JSON document.
const sampleConfig = `{
  "network": {
    "devices": ["D1", "D2", "D3"],
    "switches": ["SW1"],
    "links": [
      {"a": "D1", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D2", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D3", "b": "SW1", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "s1", "talker": "D1", "listener": "D3", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 744, "payload_bytes": 4500, "share": true},
    {"id": "s2", "talker": "D2", "listener": "D3", "type": "event-triggered",
     "period_us": 620, "max_latency_us": 620, "payload_bytes": 1500}
  ],
  "options": {"n_prob": 5, "backend": "placer"}
}`

func TestParseAndBuild(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n, err := cfg.BuildNetwork()
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	if n.NumNodes() != 4 || n.NumLinks() != 6 {
		t.Fatalf("nodes=%d links=%d", n.NumNodes(), n.NumLinks())
	}
	p, err := cfg.BuildProblem()
	if err != nil {
		t.Fatalf("BuildProblem: %v", err)
	}
	if len(p.TCT) != 1 || len(p.ECT) != 1 {
		t.Fatalf("TCT=%d ECT=%d", len(p.TCT), len(p.ECT))
	}
	if p.TCT[0].ID != "s1" || !p.TCT[0].Share || p.TCT[0].Frames() != 3 {
		t.Fatalf("TCT = %+v", p.TCT[0])
	}
	if p.ECT[0].MinInterevent != 620*time.Microsecond {
		t.Fatalf("interevent = %v", p.ECT[0].MinInterevent)
	}
	if p.Opts.NProb != 5 {
		t.Fatalf("NProb = %d", p.Opts.NProb)
	}
}

func TestComputePipeline(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if dep.Result == nil || len(dep.GCLs) == 0 {
		t.Fatal("incomplete deployment")
	}
	// The schedule must cover all three used links.
	if got := len(dep.Result.Schedule.Links()); got != 3 {
		t.Fatalf("links with slots = %d, want 3", got)
	}
}

func TestDeploymentExport(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := dep.Export()
	if exp.HyperperiodUs != 620 {
		t.Fatalf("hyperperiod = %d us", exp.HyperperiodUs)
	}
	if exp.Backend == "" || len(exp.Schedule) == 0 || len(exp.GCLs) == 0 {
		t.Fatalf("incomplete export: %+v", exp)
	}
	var total int64
	for _, e := range exp.GCLs[0].Entries {
		total += e.DurationNs
	}
	if total != exp.GCLs[0].CycleNs {
		t.Fatalf("entries sum %d != cycle %d", total, exp.GCLs[0].CycleNs)
	}
	var buf bytes.Buffer
	if err := dep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "\"schedule\"") {
		t.Fatal("JSON missing schedule key")
	}
	if GateMaskOf(exp.GCLs[0].Entries[0]) == 0 && len(exp.GCLs[0].Entries) == 1 {
		t.Fatal("suspicious all-closed single entry")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfg2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(cfg2.Streams) != len(cfg.Streams) || cfg2.Options.NProb != cfg.Options.NProb {
		t.Fatal("round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{nope")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Parse garbage: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	mutate := func(f func(*Config)) *Config {
		cfg, err := Parse([]byte(sampleConfig))
		if err != nil {
			t.Fatal(err)
		}
		f(cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  *Config
	}{
		{"unknown talker", mutate(func(c *Config) { c.Streams[0].Talker = "ghost" })},
		{"missing id", mutate(func(c *Config) { c.Streams[0].ID = "" })},
		{"bad type", mutate(func(c *Config) { c.Streams[0].Type = "sporadic" })},
		{"dup device", mutate(func(c *Config) { c.Network.Devices = append(c.Network.Devices, "D1") })},
		{"bad link", mutate(func(c *Config) { c.Network.Links[0].BandwidthBps = 0 })},
		{"disconnected", mutate(func(c *Config) { c.Network.Devices = append(c.Network.Devices, "D9") })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.cfg.BuildProblem(); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestBackendNames(t *testing.T) {
	for name, want := range map[string]string{
		"":                "auto",
		"auto":            "auto",
		"placer":          "placer",
		"greedy":          "greedy",
		"tabu":            "tabu",
		"anneal":          "anneal",
		"race":            "race",
		"smt":             "smt",
		"smt-incremental": "smt-incremental",
	} {
		cfg := &Config{Options: SchedulerOptions{Backend: name}}
		opts, err := cfg.coreOptions()
		if err != nil {
			t.Fatalf("backend %q: %v", name, err)
		}
		if got := opts.Backend.String(); got != want {
			t.Errorf("backend %q -> %q, want %q", name, got, want)
		}
	}
	// Unknown backends are rejected at configuration time.
	cfg := &Config{Options: SchedulerOptions{Backend: "quantum"}}
	if _, err := cfg.coreOptions(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown backend err = %v, want ErrBadConfig", err)
	}
}

func TestSchedulerOptionsPlumbed(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Options.Spread = true
	cfg.Options.SharedReserves = true
	p, err := cfg.BuildProblem()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Opts.SpreadFrames || !p.Opts.SharedReserves {
		t.Fatalf("options not plumbed: %+v", p.Opts)
	}
	_ = model.StreamID("x")
}

func TestDeploymentRoundTrip(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseDeployment(&buf)
	if err != nil {
		t.Fatalf("ParseDeployment: %v", err)
	}
	gcls, err := exp.GCLPrograms()
	if err != nil {
		t.Fatalf("GCLPrograms: %v", err)
	}
	if len(gcls) != len(dep.GCLs) {
		t.Fatalf("ports = %d, want %d", len(gcls), len(dep.GCLs))
	}
	for lid, orig := range dep.GCLs {
		got := gcls[lid]
		if got == nil {
			t.Fatalf("missing port %s", lid)
		}
		if got.Cycle != orig.Cycle || len(got.Entries) != len(orig.Entries) {
			t.Fatalf("port %s mismatch", lid)
		}
		for i := range orig.Entries {
			if got.Entries[i] != orig.Entries[i] {
				t.Fatalf("port %s entry %d differs", lid, i)
			}
		}
	}
}

func TestParseDeploymentErrors(t *testing.T) {
	if _, err := ParseDeployment(strings.NewReader("{oops")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("garbage: %v", err)
	}
	bad := `{"gcls":[{"link":"nolinkarrow","cycle_ns":1000,
		"entries":[{"duration_ns":1000,"gates":1}]}]}`
	exp, err := ParseDeployment(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.GCLPrograms(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad link id: %v", err)
	}
	short := `{"gcls":[{"link":"a->b","cycle_ns":2000,
		"entries":[{"duration_ns":1000,"gates":1}]}]}`
	exp, err = ParseDeployment(strings.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.GCLPrograms(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("cycle mismatch: %v", err)
	}
}

func TestComputeWithRouting(t *testing.T) {
	// A diamond where the telemetry hog fills the shortest branch; the
	// control stream only schedules when the CNC may reroute it.
	const cfgJSON = `{
	  "network": {
	    "devices": ["D1", "D2", "D3", "D5"],
	    "switches": ["SW1", "SW2", "SW3", "SW4"],
	    "links": [
	      {"a": "D1", "b": "SW1", "bandwidth_bps": 100000000},
	      {"a": "D3", "b": "SW2", "bandwidth_bps": 100000000},
	      {"a": "D2", "b": "SW4", "bandwidth_bps": 100000000},
	      {"a": "D5", "b": "SW4", "bandwidth_bps": 100000000},
	      {"a": "SW1", "b": "SW2", "bandwidth_bps": 100000000},
	      {"a": "SW1", "b": "SW3", "bandwidth_bps": 100000000},
	      {"a": "SW2", "b": "SW4", "bandwidth_bps": 100000000},
	      {"a": "SW3", "b": "SW4", "bandwidth_bps": 100000000}
	    ]
	  },
	  "streams": [
	    {"id": "hog", "talker": "D3", "listener": "D2", "type": "time-triggered",
	     "period_us": 496, "max_latency_us": 992, "payload_bytes": 6000},
	    {"id": "ctl", "talker": "D1", "listener": "D5", "type": "time-triggered",
	     "period_us": 496, "max_latency_us": 992, "payload_bytes": 3000}
	  ],
	  "options": {"backend": "placer", "routing": true}
	}`
	cfg, err := Parse([]byte(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		t.Fatalf("Compute with routing: %v", err)
	}
	if dep.Result.Schedule.NumSlots() == 0 {
		t.Fatal("empty schedule")
	}
	// Without routing the same config is infeasible.
	cfg.Options.Routing = false
	if _, err := Compute(cfg); err == nil {
		t.Fatal("expected infeasibility without routing")
	}
}

func TestMinimizeECTPlumbed(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Options.MinimizeECT = true
	p, err := cfg.BuildProblem()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Opts.MinimizeECT {
		t.Fatal("MinimizeECT not plumbed")
	}
}

func TestStreamRequirementValidation(t *testing.T) {
	mutate := func(f func(*Config)) *Config {
		cfg, err := Parse([]byte(sampleConfig))
		if err != nil {
			t.Fatal(err)
		}
		f(cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  *Config
	}{
		{"zero period", mutate(func(c *Config) { c.Streams[0].PeriodUs = 0 })},
		{"negative period", mutate(func(c *Config) { c.Streams[1].PeriodUs = -620 })},
		{"zero latency", mutate(func(c *Config) { c.Streams[0].MaxLatencyUs = 0 })},
		{"negative latency", mutate(func(c *Config) { c.Streams[0].MaxLatencyUs = -1 })},
		{"zero payload", mutate(func(c *Config) { c.Streams[0].PayloadBytes = 0 })},
		{"negative payload", mutate(func(c *Config) { c.Streams[1].PayloadBytes = -4 })},
		{"no talker", mutate(func(c *Config) { c.Streams[0].Talker = "" })},
		{"no listener", mutate(func(c *Config) { c.Streams[0].Listener = "" })},
		{"self talk", mutate(func(c *Config) { c.Streams[0].Listener = c.Streams[0].Talker })},
		{"sharing ECT", mutate(func(c *Config) { c.Streams[1].Share = true })},
		{"duplicate id", mutate(func(c *Config) { c.Streams[1].ID = c.Streams[0].ID })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.cfg.BuildProblem()
			if !errors.Is(err, ErrBadStream) {
				t.Fatalf("err = %v, want ErrBadStream", err)
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("ErrBadStream must also match ErrBadConfig, got %v", err)
			}
		})
	}
	// The unmutated document still builds.
	cfg := mutate(func(*Config) {})
	if _, err := cfg.BuildProblem(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDeploymentExportValidation(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*DeploymentExport)) *DeploymentExport {
		exp := dep.Export()
		f(exp)
		return exp
	}
	cases := []struct {
		name string
		exp  *DeploymentExport
	}{
		{"unknown gcl link", mutate(func(e *DeploymentExport) { e.GCLs[0].Link = "X->Y" })},
		{"bad gcl link id", mutate(func(e *DeploymentExport) { e.GCLs[0].Link = "noarrow" })},
		{"zero cycle", mutate(func(e *DeploymentExport) { e.GCLs[0].CycleNs = 0 })},
		{"negative entry", mutate(func(e *DeploymentExport) { e.GCLs[0].Entries[0].DurationNs = -1 })},
		{"duplicate port", mutate(func(e *DeploymentExport) { e.GCLs = append(e.GCLs, e.GCLs[0]) })},
		{"unknown schedule link", mutate(func(e *DeploymentExport) { e.Schedule[0].Link = "X->Y" })},
		{"zero slot period", mutate(func(e *DeploymentExport) {
			e.Schedule[0].Slots[0].PeriodUs = 0
		})},
		{"zero slot length", mutate(func(e *DeploymentExport) {
			e.Schedule[0].Slots[0].LengthUs = 0
		})},
		{"overlapping slots", mutate(func(e *DeploymentExport) {
			// Two deterministic slots of the same period claiming the same
			// wire time.
			e.Schedule[0].Slots = append(e.Schedule[0].Slots,
				SlotExport{Stream: "a", OffsetUs: 0, LengthUs: 100, PeriodUs: 620, Priority: 5},
				SlotExport{Stream: "b", OffsetUs: 50, LengthUs: 100, PeriodUs: 620, Priority: 5})
		})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.exp.Validate(dep.Network)
			if !errors.Is(err, ErrBadDeployment) {
				t.Fatalf("err = %v, want ErrBadDeployment", err)
			}
		})
	}
	if err := dep.Export().Validate(dep.Network); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
}
