package service

import (
	"errors"
	"net/http"

	"etsn/internal/core"
	"etsn/internal/faults"
	"etsn/internal/qcc"
)

// Class buckets every pipeline failure into the categories callers can act
// on. It is the single mapping shared by the etsn-sched CLI (exit codes)
// and the scheduling daemon (HTTP statuses), so the two front ends can
// never disagree about what a given error means.
type Class int

const (
	// ClassOK is the nil error.
	ClassOK Class = iota
	// ClassInternal is an unexpected failure (I/O, bugs): exit 1, HTTP 500.
	ClassInternal
	// ClassInvalid marks unusable input — malformed or semantically invalid
	// configurations and problems: exit 2, HTTP 400.
	ClassInvalid
	// ClassInfeasible means the input was well-formed but no schedule
	// satisfies it (including admission rejections and unrecoverable
	// degradation): exit 3, HTTP 422.
	ClassInfeasible
	// ClassTimeout means the solver ran out of its wall-clock or decision
	// budget before reaching a definitive answer: exit 4, HTTP 504.
	ClassTimeout
)

// Classify buckets an error from the qcc/core/faults pipeline. Budget
// exhaustion is checked before infeasibility: a budget error wraps the last
// scheduling failure, and "ran out of time" must not masquerade as a
// definitive "no schedule exists".
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, core.ErrBudget):
		return ClassTimeout
	case errors.Is(err, qcc.ErrBadConfig), errors.Is(err, core.ErrInvalidProblem):
		return ClassInvalid
	case errors.Is(err, core.ErrInfeasible),
		errors.Is(err, core.ErrNeedsReplan),
		errors.Is(err, faults.ErrRejected),
		errors.Is(err, faults.ErrUnrecoverable):
		return ClassInfeasible
	default:
		return ClassInternal
	}
}

// String names the class for logs, job records, and metrics labels.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassInvalid:
		return "invalid"
	case ClassInfeasible:
		return "infeasible"
	case ClassTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// ExitCode is the machine-readable process exit code for the class: 0 ok,
// 1 internal, 2 invalid input, 3 infeasible, 4 timeout.
func (c Class) ExitCode() int {
	switch c {
	case ClassOK:
		return 0
	case ClassInvalid:
		return 2
	case ClassInfeasible:
		return 3
	case ClassTimeout:
		return 4
	default:
		return 1
	}
}

// HTTPStatus maps the class onto the daemon's response statuses: 400 for
// invalid input, 422 for infeasible, 504 for a solver deadline, 500
// otherwise.
func (c Class) HTTPStatus() int {
	switch c {
	case ClassOK:
		return http.StatusOK
	case ClassInvalid:
		return http.StatusBadRequest
	case ClassInfeasible:
		return http.StatusUnprocessableEntity
	case ClassTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// ParseClass is the inverse of Class.String, for journal replay.
func ParseClass(s string) Class {
	switch s {
	case "ok":
		return ClassOK
	case "invalid":
		return ClassInvalid
	case "infeasible":
		return ClassInfeasible
	case "timeout":
		return ClassTimeout
	default:
		return ClassInternal
	}
}
