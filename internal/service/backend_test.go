package service

import (
	"bytes"
	"strings"
	"testing"

	"etsn/internal/core"
)

// admitBodyBackend is admitBody with an explicit replan backend (also a
// fuzz seed for DecodeAdmit).
const admitBodyBackend = `{"backend": "greedy", "streams": [
  {"id": "t2", "talker": "D4", "listener": "D2", "type": "time-triggered",
   "period_us": 620, "max_latency_us": 744, "payload_bytes": 500}
]}`

// planConfigNoBackend strips the pinned backend from the test config so the
// daemon's default policy applies.
func planConfigNoBackend() string {
	return strings.Replace(planConfig, `"backend": "placer"`, `"backend": ""`, 1)
}

// TestSubmitBackendDefaultsToRace: a plan job that does not pin a backend
// runs (and journals) the daemon's race policy, so a restart rebuilds the
// live plan with exactly the backend that produced it.
func TestSubmitBackendDefaultsToRace(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{DataDir: dir})
	job, err := s.Submit("acme", KindPlan, []byte(planConfigNoBackend()))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, job); snap.State != JobDone {
		t.Fatalf("plan job: %+v", snap)
	}
	ten := s.tenantGet("acme")
	ten.mu.Lock()
	effective := string(ten.effective)
	ten.mu.Unlock()
	if !strings.Contains(effective, `"backend":"race"`) {
		t.Fatalf("effective config does not journal the race default: %s", effective)
	}
	if v := s.reg.CounterValue("etsn_backend_races_total"); v == 0 {
		t.Fatal("plan job did not run the race")
	}
	s.Shutdown()

	// Restart: the journaled effective config carries the backend, so the
	// replayed live controller solves with it too.
	s2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown()
	adm, err := s2.Submit("acme", KindAdmit, []byte(admitBody))
	if err != nil {
		t.Fatalf("Submit admit: %v", err)
	}
	if snap := waitJob(t, adm); snap.State != JobDone {
		t.Fatalf("admit after restart: %+v", snap)
	}
}

// TestAdmitBackendAppliedToReplans: an admit request's backend lands on the
// live controller's replan knob; an unknown name is rejected at decode time
// as invalid input.
func TestAdmitBackendAppliedToReplans(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Shutdown()
	job, err := s.Submit("acme", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, job); snap.State != JobDone {
		t.Fatalf("plan job: %+v", snap)
	}
	adm, err := s.Submit("acme", KindAdmit, []byte(admitBodyBackend))
	if err != nil {
		t.Fatalf("Submit admit: %v", err)
	}
	if snap := waitJob(t, adm); snap.State != JobDone {
		t.Fatalf("admit job: %+v", snap)
	}
	ctrl, err := s.liveController(s.tenantGet("acme"))
	if err != nil {
		t.Fatalf("liveController: %v", err)
	}
	if ctrl.ReplanBackend != core.BackendGreedy {
		t.Fatalf("ReplanBackend = %v, want greedy", ctrl.ReplanBackend)
	}

	if _, err := DecodeAdmit(bytes.NewReader([]byte(
		`{"backend": "quantum", "streams": [{"id": "a", "talker": "D1", "listener": "D2",
		  "type": "time-triggered", "period_us": 620, "max_latency_us": 744, "payload_bytes": 100}]}`,
	)), 0); Classify(err) != ClassInvalid {
		t.Fatalf("unknown admit backend classified %v (%v), want invalid", Classify(err), err)
	}
}
