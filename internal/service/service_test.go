package service

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// planConfig is a star network (paper Fig. 2 shape, one extra device) with
// one TCT and one ECT stream — comfortably feasible for the placer.
const planConfig = `{
  "network": {
    "devices": ["D1", "D2", "D3", "D4"],
    "switches": ["SW1"],
    "links": [
      {"a": "D1", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D2", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D3", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D4", "b": "SW1", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "t1", "talker": "D1", "listener": "D3", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 744, "payload_bytes": 4500, "share": true},
    {"id": "e1", "talker": "D2", "listener": "D3", "type": "event-triggered",
     "period_us": 620, "max_latency_us": 620, "payload_bytes": 1500}
  ],
  "options": {"n_prob": 3, "backend": "placer"}
}`

// admitBody adds one more TCT stream between the two otherwise-idle ports
// (the SW1->D3 downlink is saturated by t1+e1).
const admitBody = `{"streams": [
  {"id": "t2", "talker": "D4", "listener": "D2", "type": "time-triggered",
   "period_us": 620, "max_latency_us": 744, "payload_bytes": 500}
]}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func waitJob(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID, j.State())
	}
	return j.Snapshot()
}

func TestServiceLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{DataDir: dir})

	job, err := s.Submit("acme", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitJob(t, job)
	if snap.State != JobDone {
		t.Fatalf("plan job: %+v", snap)
	}
	if snap.Version != 1 {
		t.Fatalf("version = %d, want 1", snap.Version)
	}
	if len(snap.ShedTCT) != 0 {
		t.Fatalf("plan shed %v on a feasible config", snap.ShedTCT)
	}

	pv, err := s.Plan("acme", 0)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if pv.Version != 1 || len(pv.Export) == 0 {
		t.Fatalf("plan v%d export=%dB", pv.Version, len(pv.Export))
	}
	// Version 1 rolls out every programmed port.
	if len(pv.ChangedPorts) == 0 {
		t.Fatal("first plan has no changed ports")
	}

	// Admit one more stream into the live plan.
	job2, err := s.Submit("acme", KindAdmit, []byte(admitBody))
	if err != nil {
		t.Fatalf("Submit admit: %v", err)
	}
	snap2 := waitJob(t, job2)
	if snap2.State != JobDone {
		t.Fatalf("admit job: %+v", snap2)
	}
	if snap2.Version != 2 {
		t.Fatalf("admit version = %d, want 2", snap2.Version)
	}
	if len(snap2.ShedTCT) != 0 || len(snap2.ShedBE) != 0 {
		t.Fatalf("admission shed %v/%v", snap2.ShedTCT, snap2.ShedBE)
	}

	// The new version's export must contain the admitted stream.
	pv2, err := s.Plan("acme", 2)
	if err != nil {
		t.Fatalf("Plan v2: %v", err)
	}
	if !strings.Contains(string(pv2.Export), `"t2"`) {
		t.Fatal("v2 export is missing the admitted stream t2")
	}

	diff, err := s.Diff("acme", 1, 2)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	// Admitting t2 must program the D4->SW1 direction somewhere in the
	// rollout; the untouched D1 uplink should not dominate the diff.
	if len(diff.ChangedPorts) == 0 {
		t.Fatal("no changed ports between v1 and v2")
	}
	found := false
	for _, p := range diff.ChangedPorts {
		if strings.Contains(p, "D4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff %v does not touch D4's uplink", diff.ChangedPorts)
	}

	if got := s.Metrics().CounterValue("etsn_service_jobs_done_total"); got != 2 {
		t.Fatalf("jobs_done_total = %d, want 2", got)
	}
	if got := s.Metrics().CounterValue("etsn_service_jobs_accepted_total"); got != 2 {
		t.Fatalf("jobs_accepted_total = %d, want 2", got)
	}
	s.Shutdown()
}

func TestServiceErrorClasses(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Shutdown()

	// Malformed JSON is rejected at submission (the journal stores
	// payloads as JSON values).
	if _, err := s.Submit("acme", KindPlan, []byte(`{"network":`)); Classify(err) != ClassInvalid {
		t.Fatalf("malformed body: %v", err)
	}

	// Well-formed JSON with a semantically invalid config reaches the
	// worker and fails with the invalid class.
	bogus := strings.Replace(planConfig, `"time-triggered"`, `"bogus-type"`, 1)
	j1, err := s.Submit("acme", KindPlan, []byte(bogus))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, j1); snap.State != JobFailed || snap.Class != "invalid" {
		t.Fatalf("bogus config: %+v", snap)
	}

	// An impossible deadline on the sharing TCT stream is infeasible, and
	// sharing streams are never shed (they fund ECT drain capacity), so
	// the ladder cannot save the job.
	bad := strings.Replace(planConfig, `"max_latency_us": 744`, `"max_latency_us": 2`, 1)
	j2, err := s.Submit("acme", KindPlan, []byte(bad))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, j2); snap.State != JobFailed || snap.Class != "infeasible" {
		t.Fatalf("impossible ECT: %+v", snap)
	}

	// Admission without a deployed plan is infeasible, not a crash.
	j3, err := s.Submit("fresh-tenant", KindAdmit, []byte(admitBody))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, j3); snap.State != JobFailed {
		t.Fatalf("admit without plan: %+v", snap)
	}
}

// TestServicePlanJobShedsTCTNeverECT drives a plan job into infeasibility
// and checks the degradation ladder: the loose TCT stream is shed, the ECT
// stream survives, and the job still completes with a plan.
func TestServicePlanJobShedsTCTNeverECT(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Shutdown()

	// Add a non-sharing TCT stream whose deadline is below its physical
	// floor; the rest of the config stays satisfiable.
	cfg := strings.Replace(planConfig, `"streams": [`, `"streams": [
    {"id": "t3", "talker": "D4", "listener": "D2", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 2, "payload_bytes": 500},`, 1)
	job, err := s.Submit("acme", KindPlan, []byte(cfg))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitJob(t, job)
	if snap.State != JobDone {
		t.Fatalf("degraded plan job: %+v", snap)
	}
	if len(snap.ShedTCT) != 1 || snap.ShedTCT[0] != "t3" {
		t.Fatalf("shed = %v, want [t3]", snap.ShedTCT)
	}
	pv, err := s.Plan("acme", 0)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// ECT reservations appear in the export as per-possibility slots
	// ("e1/ps0", ...).
	if !strings.Contains(string(pv.Export), `e1/`) {
		t.Fatal("degraded plan lost the ECT stream")
	}
	if !strings.Contains(string(pv.Export), `"t1"`) {
		t.Fatal("degraded plan lost the satisfiable TCT stream")
	}
	if s.Metrics().CounterValue("etsn_service_shed_streams_total") == 0 {
		t.Fatal("shed counter untouched")
	}
}

func TestServiceAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  1,
		TenantQuota: 1,
		SolveDelay:  300 * time.Millisecond,
	})
	defer s.Shutdown()

	a, err := s.Submit("t1", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	// Per-tenant quota: t1 already has a job in flight.
	if _, err := s.Submit("t1", KindPlan, []byte(planConfig)); err == nil {
		t.Fatal("quota breach accepted")
	}
	// Wait for the worker to take job a so the queue slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for a.State() == JobQueued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Submit("t2", KindPlan, []byte(planConfig)); err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	// Global queue bound: one job running, one queued, the third bounces.
	if _, err := s.Submit("t3", KindPlan, []byte(planConfig)); err == nil {
		t.Fatal("queue breach accepted")
	}
	if s.RetryAfter() < 1 {
		t.Fatalf("RetryAfter = %d", s.RetryAfter())
	}
	if s.Metrics().CounterValue("etsn_service_jobs_rejected_total") < 2 {
		t.Fatal("rejections not counted")
	}

	// Draining rejects everything.
	s.BeginDrain()
	if _, err := s.Submit("t9", KindPlan, []byte(planConfig)); err == nil {
		t.Fatal("submission accepted while draining")
	}
}

// TestServiceDrainParksAndRecovers is the graceful-shutdown contract: jobs
// interrupted by a drain are journal-parked within the deadline, and a new
// server on the same data directory resumes and finishes them.
func TestServiceDrainParksAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		DataDir:      dir,
		Workers:      1,
		SolveDelay:   10 * time.Second, // far beyond the drain budget
		DrainTimeout: 200 * time.Millisecond,
	})

	running, err := s.Submit("acme", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	queued, err := s.Submit("beta", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	start := time.Now()
	s.Shutdown()
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("shutdown took %v with a 200ms drain budget", took)
	}
	for _, j := range []*Job{running, queued} {
		if st := j.State(); st != JobParked {
			t.Fatalf("job %s state %s, want parked", j.ID, st)
		}
	}

	// Restart: replay must resurrect both jobs and run them to completion.
	s2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown()
	if s2.RecoveredJobs != 2 {
		t.Fatalf("RecoveredJobs = %d, want 2", s2.RecoveredJobs)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, ok := s2.JobByID(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if !j.Recovered {
			t.Fatalf("job %s not marked recovered", id)
		}
		if snap := waitJob(t, j); snap.State != JobDone {
			t.Fatalf("recovered job %s: %+v", id, snap)
		}
	}
	if _, err := s2.Plan("acme", 0); err != nil {
		t.Fatalf("acme plan after recovery: %v", err)
	}
	if _, err := s2.Plan("beta", 0); err != nil {
		t.Fatalf("beta plan after recovery: %v", err)
	}
	if s2.Metrics().CounterValue("etsn_service_jobs_recovered_total") != 2 {
		t.Fatal("recovered counter wrong")
	}
}

// TestServiceRestartServesPlansWithoutResolving proves the journal carries
// everything needed to serve plans: a cold server answers version fetches
// and diffs immediately, and a subsequent admission still works (the live
// controller is rebuilt deterministically on demand).
func TestServiceRestartServesPlansWithoutResolving(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{DataDir: dir})
	job, err := s.Submit("acme", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, job); snap.State != JobDone {
		t.Fatalf("plan: %+v", snap)
	}
	s.Shutdown()

	s2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown()
	pv, err := s2.Plan("acme", 1)
	if err != nil {
		t.Fatalf("Plan after restart: %v", err)
	}
	var exp map[string]any
	if err := json.Unmarshal(pv.Export, &exp); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}

	job2, err := s2.Submit("acme", KindAdmit, []byte(admitBody))
	if err != nil {
		t.Fatalf("Submit admit: %v", err)
	}
	snap := waitJob(t, job2)
	if snap.State != JobDone || snap.Version != 2 {
		t.Fatalf("admit after restart: %+v", snap)
	}
}
