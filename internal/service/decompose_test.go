package service

import (
	"strings"
	"testing"
)

// planConfigDecompose switches the test config to decomposed scheduling.
func planConfigDecompose() string {
	return strings.Replace(planConfig,
		`"options": {"n_prob": 3, "backend": "placer"}`,
		`"options": {"n_prob": 3, "backend": "placer", "decompose": true}`, 1)
}

// TestSubmitDecomposeJournaled: a plan job that asks for decomposed
// scheduling runs to completion and journals the flag in the effective
// config, so a restart replays the plan with the same solve shape.
func TestSubmitDecomposeJournaled(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{DataDir: dir})
	job, err := s.Submit("acme", KindPlan, []byte(planConfigDecompose()))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := waitJob(t, job); snap.State != JobDone {
		t.Fatalf("plan job: %+v", snap)
	}
	ten := s.tenantGet("acme")
	ten.mu.Lock()
	effective := string(ten.effective)
	ten.mu.Unlock()
	if !strings.Contains(effective, `"decompose":true`) {
		t.Fatalf("effective config does not journal decompose: %s", effective)
	}
	s.Shutdown()

	// Restart: the journaled config round-trips, the replayed controller
	// accepts new work on top of the decomposed plan.
	s2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Shutdown()
	adm, err := s2.Submit("acme", KindAdmit, []byte(admitBody))
	if err != nil {
		t.Fatalf("Submit admit: %v", err)
	}
	if snap := waitJob(t, adm); snap.State != JobDone {
		t.Fatalf("admit after restart: %+v", snap)
	}
}
