package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"etsn/internal/qcc"
)

// Handler builds the daemon's HTTP surface over a Server.
//
//	POST /v1/tenants/{tenant}/jobs     submit a full-plan job (qcc config doc)
//	POST /v1/tenants/{tenant}/streams  admit streams into the live plan
//	GET  /v1/jobs                      list jobs
//	GET  /v1/jobs/{id}                 poll one job
//	GET  /v1/tenants/{tenant}/plans            plan-version history (metadata)
//	GET  /v1/tenants/{tenant}/plans/{version}  full deployment export ("latest" ok)
//	GET  /v1/tenants/{tenant}/diff?from=N&to=M GCL rollout between versions
//	GET  /healthz                      liveness
//	GET  /readyz                       readiness; 503 once draining
//	GET  /metrics                      Prometheus text format
//	GET  /                             embedded live dashboard (internal/dash)
//	GET  /api/metrics[?tenant=T]       registry snapshot as JSON (per-tenant view)
//	GET  /api/metrics/stream           SSE: one snapshot frame per second
//	GET  /api/spans /api/lanes         phase spans / frame lanes
//	GET  /api/trend /api/history       wall-time trend verdicts / raw history
//
// Submissions answer 202 with the job snapshot, 429 + Retry-After when
// admission control rejects (quota or queue bound), 503 while draining, and
// 400 for bodies that fail validation. Job failures carry the same error
// classes the etsn-sched CLI exits with (invalid/infeasible/timeout).
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()

	// The live dashboard serves the embedded page at the root and its
	// JSON/SSE API under /api/ (see internal/dash). The /api/metrics
	// snapshot is field-for-field consistent with /metrics below
	// (contract-tested), and ?tenant= narrows it to one tenant's
	// labeled instruments.
	dashHandler := s.Dash().Handler()
	mux.Handle("GET /{$}", dashHandler)
	mux.Handle("GET /index.html", dashHandler)
	mux.Handle("GET /api/", dashHandler)

	mux.HandleFunc("POST /v1/tenants/{tenant}/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(r, s.cfg.MaxBodyBytes)
		if err == nil {
			_, err = DecodeSubmit(bytes.NewReader(body), s.cfg.MaxBodyBytes)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		s.submitHTTP(w, r.PathValue("tenant"), KindPlan, body)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/streams", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(r, s.cfg.MaxBodyBytes)
		if err == nil {
			_, err = DecodeAdmit(bytes.NewReader(body), s.cfg.MaxBodyBytes)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		s.submitHTTP(w, r.PathValue("tenant"), KindAdmit, body)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.JobByID(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.Snapshot())
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/plans", func(w http.ResponseWriter, r *http.Request) {
		versions, err := s.Plans(r.PathValue("tenant"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"versions": versions})
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/plans/{version}", func(w http.ResponseWriter, r *http.Request) {
		want := 0 // latest
		if v := r.PathValue("version"); v != "latest" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "version must be a positive integer or \"latest\"", http.StatusBadRequest)
				return
			}
			want = n
		}
		pv, err := s.Plan(r.PathValue("tenant"), want)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Etsn-Plan-Version", strconv.Itoa(pv.Version))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(pv.Export)
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/diff", func(w http.ResponseWriter, r *http.Request) {
		from, err1 := strconv.Atoi(r.URL.Query().Get("from"))
		to, err2 := strconv.Atoi(r.URL.Query().Get("to"))
		if err1 != nil || err2 != nil || from < 1 || to < 1 {
			http.Error(w, "from and to must be positive plan versions", http.StatusBadRequest)
			return
		}
		diff, err := s.Diff(r.PathValue("tenant"), from, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, diff)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.Metrics().WritePrometheus(w)
	})

	return mux
}

// submitHTTP runs admission control and writes the submission response.
func (s *Server) submitHTTP(w http.ResponseWriter, tenantName string, kind JobKind, body []byte) {
	job, err := s.Submit(tenantName, kind, body)
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrRejectedBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, http.StatusAccepted, job.Snapshot())
	}
}

func writeError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), Classify(err).HTTPStatus())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// readBody slurps a bounded request body. Oversize bodies are caught here
// (and again, defensively, by the decoders).
func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", qcc.ErrBadConfig, err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", qcc.ErrBadConfig, limit)
	}
	return data, nil
}
