package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"etsn/internal/dash"
)

// parsePromSeries reduces a text exposition to series-name -> value.
func parsePromSeries(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad exposition value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestDashboardMetricsMatchPrometheus: the daemon's /api/metrics JSON
// snapshot is field-for-field consistent with its /metrics Prometheus
// exposition — same series, same values — after real jobs have run.
func TestDashboardMetricsMatchPrometheus(t *testing.T) {
	s, ts := newHTTPServer(t, Config{})

	job, err := s.Submit("acme", KindPlan, []byte(planConfig))
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitJob(t, job); snap.State != JobDone {
		t.Fatalf("job state %s", snap.State)
	}

	resp, promBody := doJSON(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	prom := parsePromSeries(t, string(promBody))

	resp, jsonBody := doJSON(t, "GET", ts.URL+"/api/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/metrics = %d", resp.StatusCode)
	}
	var snap dash.Snapshot
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		t.Fatalf("/api/metrics decode: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("daemon snapshot has no counters after a completed job")
	}

	for _, p := range append(append([]dash.Point{}, snap.Counters...), snap.Gauges...) {
		got, ok := prom[p.Name]
		if !ok {
			t.Errorf("snapshot point %q missing from /metrics", p.Name)
			continue
		}
		if got != p.Value {
			t.Errorf("%q: /api/metrics %d, /metrics %d", p.Name, p.Value, got)
		}
	}
	for _, hp := range snap.Histograms {
		base, labels, _ := strings.Cut(hp.Name, "{")
		if labels != "" {
			labels = "{" + labels
		}
		if got := prom[base+"_sum"+labels]; got != hp.Sum {
			t.Errorf("%s_sum: /api/metrics %d, /metrics %d", base, hp.Sum, got)
		}
		if got := prom[base+"_count"+labels]; got != hp.Count {
			t.Errorf("%s_count: /api/metrics %d, /metrics %d", base, hp.Count, got)
		}
	}
}

// TestDashboardIndexAndTenantView: the daemon serves the embedded page at
// its root, and ?tenant= narrows /api/metrics to one tenant's labeled
// instruments.
func TestDashboardIndexAndTenantView(t *testing.T) {
	s, ts := newHTTPServer(t, Config{})

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "E-TSN") {
		t.Fatalf("root must serve the embedded dashboard: %d", resp.StatusCode)
	}

	for _, tenant := range []string{"plant-a", "plant-b"} {
		job, err := s.Submit(tenant, KindPlan, []byte(planConfig))
		if err != nil {
			t.Fatal(err)
		}
		if snap := waitJob(t, job); snap.State != JobDone {
			t.Fatalf("%s job state %s", tenant, snap.State)
		}
	}

	_, body := doJSON(t, "GET", ts.URL+"/api/metrics?tenant=plant-a", "")
	var snap dash.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("tenant view is empty after a completed job")
	}
	var accepted, done int64
	for _, p := range snap.Counters {
		if p.Labels["tenant"] != "plant-a" {
			t.Fatalf("tenant view leaked another tenant's point: %+v", p)
		}
		switch p.Labels["state"] {
		case "accepted":
			accepted = p.Value
		case "done":
			done = p.Value
		}
	}
	if accepted != 1 || done != 1 {
		t.Fatalf("tenant job counters: accepted %d, done %d (want 1,1)", accepted, done)
	}
}
