// Package service turns the one-shot CNC pipeline into a fault-tolerant,
// long-running scheduling daemon ("CNC as a service"). A Server owns a set
// of tenants, each with a versioned plan history and a live deployment; it
// absorbs a request stream through a bounded, quota-guarded job queue, runs
// scheduling jobs on a small worker pool with per-job deadlines, retries
// transient failures with capped jittered backoff, degrades gracefully
// under infeasibility (shedding best-effort and loose TCT streams, never
// ECT — the internal/faults ladder), and journals every job transition to a
// write-ahead log so a `kill -9` mid-solve recovers to a consistent state
// on restart.
//
// The HTTP surface (see handler.go) is a thin layer over this package;
// everything here is usable as a library and is exercised directly by the
// tests.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"etsn/internal/core"
	"etsn/internal/dash"
	"etsn/internal/faults"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/obs"
	"etsn/internal/qcc"
)

// ErrNoPlan is returned for operations that need a deployed plan (stream
// admission, plan fetches) on a tenant that has none yet.
var ErrNoPlan = errors.New("tenant has no deployed plan")

// ErrRejectedBusy is the admission-control rejection: the tenant is over
// quota or the queue is full. The HTTP layer maps it to 429 + Retry-After.
var ErrRejectedBusy = errors.New("admission rejected: over quota or queue full")

// ErrDraining is returned for submissions during graceful shutdown (503).
var ErrDraining = errors.New("server is draining")

// Config tunes the Server. The zero value gets sensible defaults from
// withDefaults.
type Config struct {
	// DataDir holds the job journal. Empty disables persistence (tests
	// mostly set it; the daemon requires it).
	DataDir string
	// Workers is the solver worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the global pending-job queue (default 16).
	QueueDepth int
	// TenantQuota bounds one tenant's queued+running jobs (default 4).
	TenantQuota int
	// JobTimeout is the per-job solver deadline (default 30s). A job's
	// deadline propagates into core.Options.Timeout for every attempt.
	JobTimeout time.Duration
	// MaxRetries bounds re-solves after transient (budget/timeout)
	// failures (default 2 retries after the first attempt).
	MaxRetries int
	// Backoff shapes the delay before each retry. Defaults to
	// 100ms·2^n capped at 2s with 20% jitter.
	Backoff faults.Backoff
	// DrainTimeout bounds how long Shutdown waits for in-flight jobs
	// before journal-parking them (default 10s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 4 MiB).
	MaxBodyBytes int64
	// SolveDelay injects artificial latency before every solve attempt —
	// a fault-injection hook that makes "SIGKILL mid-job" deterministic in
	// the crash-recovery gate. Zero in production.
	SolveDelay time.Duration
	// Obs receives service metrics; nil creates a private registry (the
	// /metrics endpoint needs one to exist).
	Obs *obs.Registry
	// HistoryPath optionally points at a bench/history.jsonl-format
	// wall-time history backing the dashboard's /api/trend and
	// /api/history endpoints. Empty serves an empty trend document.
	HistoryPath string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 4
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.Backoff.Base <= 0 {
		c.Backoff = faults.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.2}
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c
}

// PlanVersion is one entry of a tenant's plan history.
type PlanVersion struct {
	Version int    `json:"version"`
	JobID   string `json:"job"`
	// Export is the full deployment document (qcc.DeploymentExport JSON).
	Export json.RawMessage `json:"-"`
	// ChangedPorts lists the ports whose gate program differs from the
	// previous version — the rollout set.
	ChangedPorts []string `json:"changed_ports,omitempty"`
	ShedTCT      []string `json:"shed_tct,omitempty"`
	ShedBE       []string `json:"shed_be,omitempty"`
	Incremental  bool     `json:"incremental,omitempty"`
}

// tenant is one isolated customer of the daemon.
type tenant struct {
	name string

	// execMu serializes job execution for the tenant: plan state is a
	// linear history, two concurrent solves for one tenant make no sense.
	execMu sync.Mutex

	mu        sync.Mutex
	inflight  int // queued + running jobs (admission control)
	versions  []*PlanVersion
	effective []byte // cumulative config JSON producing the latest version
	ctrl      *faults.Controller
}

// Server is the daemon core.
type Server struct {
	cfg  Config
	reg  *obs.Registry
	dash *dash.Server

	journal *journal

	mu       sync.Mutex
	tenants  map[string]*tenant
	jobs     map[string]*Job
	jobOrder []string
	jobSeq   int
	draining bool

	queue chan *Job

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// RecoveredJobs counts jobs re-enqueued by journal replay at startup.
	RecoveredJobs int
}

// New builds a Server: replays the journal in cfg.DataDir (if any),
// restores tenant plan histories, re-enqueues unfinished jobs, and starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*Job),
	}
	s.dash = dash.NewServer(dash.Options{Registry: cfg.Obs, HistoryPath: cfg.HistoryPath})
	s.ctx, s.cancel = context.WithCancel(context.Background())

	var pending []*replayedJob
	if cfg.DataDir != "" {
		st, err := replayJournal(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if err := s.restore(st); err != nil {
			return nil, err
		}
		pending = st.pending()
		s.journal, err = openJournal(cfg.DataDir, st.lastSeq)
		if err != nil {
			return nil, err
		}
	}

	depth := cfg.QueueDepth
	if need := len(pending) + cfg.QueueDepth; need > depth {
		depth = need
	}
	s.queue = make(chan *Job, depth)
	for _, rj := range pending {
		job := newJob(rj.rec.Job, rj.rec.Tenant, rj.rec.JobKind, rj.rec.Payload,
			time.Duration(rj.rec.DeadlineMs)*time.Millisecond)
		job.Recovered = true
		s.jobs[job.ID] = job
		s.jobOrder = append(s.jobOrder, job.ID)
		s.tenantFor(job.Tenant).inflight++
		s.queue <- job
		s.RecoveredJobs++
		s.reg.Counter("etsn_service_jobs_recovered_total").Inc()
	}
	s.reg.Gauge("etsn_service_queue_depth").Set(int64(len(s.queue)))

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// restore folds a replayed journal into server state: terminal jobs become
// queryable snapshots, tenants get their version history and effective
// configs back (live controllers are rebuilt lazily on first need).
func (s *Server) restore(st *replayState) error {
	for _, rj := range st.jobs {
		job := newJob(rj.rec.Job, rj.rec.Tenant, rj.rec.JobKind, rj.rec.Payload,
			time.Duration(rj.rec.DeadlineMs)*time.Millisecond)
		if n := jobSeqOf(rj.rec.Job); n > s.jobSeq {
			s.jobSeq = n
		}
		switch rj.terminal {
		case "done":
			job.finishDone(rj.doneRec.Version, rj.doneRec.ShedTCT, rj.doneRec.ShedBE)
		case "failed":
			job.finishFailed(ParseClass(rj.class), rj.errText)
		default:
			continue // pending: re-created (with Recovered set) by New
		}
		s.jobs[job.ID] = job
		s.jobOrder = append(s.jobOrder, job.ID)
	}
	for name, recs := range st.tenantDone {
		t := s.tenantFor(name)
		for _, rec := range recs {
			t.versions = append(t.versions, &PlanVersion{
				Version:      rec.Version,
				JobID:        rec.Job,
				Export:       rec.Export,
				ChangedPorts: rec.Changed,
				ShedTCT:      rec.ShedTCT,
				ShedBE:       rec.ShedBE,
			})
			t.effective = rec.Effective
		}
	}
	return nil
}

// jobSeqOf parses the numeric suffix of a job id ("j-42" -> 42).
func jobSeqOf(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0
	}
	return n
}

func (s *Server) tenantFor(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name}
		s.tenants[name] = t
	}
	return t
}

// Metrics exposes the server's registry (for /metrics and tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Dash returns the daemon's live dashboard server; the HTTP layer mounts
// its handler next to /metrics.
func (s *Server) Dash() *dash.Server { return s.dash }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RetryAfter estimates (in whole seconds, at least 1) when a rejected
// client should retry: the queue's current depth paced by the worker pool.
func (s *Server) RetryAfter() int {
	sec := 1 + len(s.queue)/s.cfg.Workers
	if sec < 1 {
		sec = 1
	}
	return sec
}

// Submit runs admission control and, when the job is admitted, journals and
// enqueues it. The payload must already be validated (DecodeSubmit /
// DecodeAdmit). Returns ErrDraining during shutdown and ErrRejectedBusy
// when the tenant quota or the queue bound would be exceeded — the caller
// maps those to 503/429.
func (s *Server) Submit(tenantName string, kind JobKind, payload []byte) (*Job, error) {
	start := time.Now()
	if !json.Valid(payload) {
		// The journal stores payloads verbatim as JSON values; a payload
		// that is not JSON could never decode into a config anyway.
		s.reg.Counter(`etsn_service_jobs_rejected_total{reason="body"}`).Inc()
		return nil, fmt.Errorf("%w: body is not valid JSON", qcc.ErrBadConfig)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reg.Counter(`etsn_service_jobs_rejected_total{reason="draining"}`).Inc()
		return nil, ErrDraining
	}
	t := s.tenantFor(tenantName)
	if t.inflight >= s.cfg.TenantQuota {
		s.mu.Unlock()
		s.reg.Counter(`etsn_service_jobs_rejected_total{reason="quota"}`).Inc()
		return nil, fmt.Errorf("%w: tenant %q has %d jobs in flight (quota %d)",
			ErrRejectedBusy, tenantName, s.cfg.TenantQuota, s.cfg.TenantQuota)
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.reg.Counter(`etsn_service_jobs_rejected_total{reason="queue"}`).Inc()
		return nil, fmt.Errorf("%w: queue depth %d reached", ErrRejectedBusy, s.cfg.QueueDepth)
	}
	s.jobSeq++
	job := newJob(fmt.Sprintf("j-%d", s.jobSeq), tenantName, kind, payload, s.cfg.JobTimeout)
	t.inflight++
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	s.mu.Unlock()

	// WAL: the job must be durable before the client sees its id.
	if err := s.journal.append(journalRecord{
		Kind: "submitted", Job: job.ID, Tenant: tenantName, JobKind: kind,
		Payload: json.RawMessage(payload), DeadlineMs: job.Deadline.Milliseconds(),
	}); err != nil {
		s.mu.Lock()
		t.inflight--
		delete(s.jobs, job.ID)
		for i, id := range s.jobOrder {
			if id == job.ID {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, err
	}

	select {
	case s.queue <- job:
	default:
		// The capacity check above makes this unreachable in practice
		// (queue writes happen under admission accounting); park defensively
		// rather than block a handler.
		s.parkJob(job)
		return job, nil
	}
	s.reg.Counter("etsn_service_jobs_accepted_total").Inc()
	// Tenant-labeled twin of the global counter: the dashboard's
	// per-tenant registry view (/api/metrics?tenant=) keys off these.
	// obs.Labels escapes hostile tenant names.
	s.reg.Counter(obs.Labels("etsn_service_tenant_jobs_total", "tenant", tenantName, "state", "accepted")).Inc()
	s.reg.Gauge("etsn_service_queue_depth").Set(int64(len(s.queue)))
	s.reg.Histogram("etsn_service_admission_latency_ns").ObserveDuration(time.Since(start))
	return job, nil
}

// JobByID returns a submitted job.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []Snapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := s.jobs
	s.mu.Unlock()
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		out = append(out, jobs[id].Snapshot())
	}
	return out
}

// Plans returns a tenant's plan history (newest last).
func (s *Server) Plans(tenantName string) ([]*PlanVersion, error) {
	s.mu.Lock()
	t, ok := s.tenants[tenantName]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoPlan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.versions) == 0 {
		return nil, ErrNoPlan
	}
	return append([]*PlanVersion(nil), t.versions...), nil
}

// Plan returns one plan version; version 0 means latest.
func (s *Server) Plan(tenantName string, version int) (*PlanVersion, error) {
	versions, err := s.Plans(tenantName)
	if err != nil {
		return nil, err
	}
	if version == 0 {
		return versions[len(versions)-1], nil
	}
	for _, v := range versions {
		if v.Version == version {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: version %d", ErrNoPlan, version)
}

// PlanDiff describes the GCL rollout from one plan version to another: the
// ports whose gate programs changed, with their new programs.
type PlanDiff struct {
	Tenant string `json:"tenant"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	// ChangedPorts is every port whose program differs.
	ChangedPorts []string `json:"changed_ports"`
	// Programs holds the new gate program of each changed port.
	Programs []qcc.PortGCLExport `json:"programs"`
}

// Diff computes the GCL rollout between two stored plan versions.
func (s *Server) Diff(tenantName string, from, to int) (*PlanDiff, error) {
	a, err := s.Plan(tenantName, from)
	if err != nil {
		return nil, err
	}
	b, err := s.Plan(tenantName, to)
	if err != nil {
		return nil, err
	}
	gclsA, _, err := exportPrograms(a.Export)
	if err != nil {
		return nil, err
	}
	gclsB, expB, err := exportPrograms(b.Export)
	if err != nil {
		return nil, err
	}
	changed := gcl.ChangedPorts(gclsA, gclsB)
	diff := &PlanDiff{Tenant: tenantName, From: a.Version, To: b.Version}
	byLink := make(map[string]qcc.PortGCLExport, len(expB.GCLs))
	for _, pg := range expB.GCLs {
		byLink[pg.Link] = pg
	}
	for _, lid := range changed {
		diff.ChangedPorts = append(diff.ChangedPorts, lid.String())
		if pg, ok := byLink[lid.String()]; ok {
			diff.Programs = append(diff.Programs, pg)
		}
	}
	return diff, nil
}

// exportPrograms parses a stored deployment export and reconstructs its
// gate programs.
func exportPrograms(raw json.RawMessage) (map[model.LinkID]*gcl.PortGCL, *qcc.DeploymentExport, error) {
	exp, err := qcc.ParseDeployment(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	gcls, err := exp.GCLPrograms()
	if err != nil {
		return nil, nil, err
	}
	return gcls, exp, nil
}

// worker drains the job queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			s.reg.Gauge("etsn_service_queue_depth").Set(int64(len(s.queue)))
			s.runJob(job)
		}
	}
}

// runJob executes one job end to end: deadline, retries with backoff on
// transient failures, graceful degradation on infeasibility, journaled
// terminal state, tenant plan-version commit.
func (s *Server) runJob(job *Job) {
	t := s.tenantGet(job.Tenant)
	t.execMu.Lock()
	defer t.execMu.Unlock()
	defer func() {
		s.mu.Lock()
		t.inflight--
		s.mu.Unlock()
	}()

	if job.State() == JobParked {
		return // parked by a drain that lost the race with the queue
	}
	job.setRunning()
	_ = s.journal.append(journalRecord{Kind: "started", Job: job.ID})

	if s.cfg.SolveDelay > 0 && !s.sleep(s.cfg.SolveDelay) {
		s.parkJob(job)
		return
	}

	var err error
	switch job.Kind {
	case KindPlan:
		err = s.runPlanJob(t, job)
	case KindAdmit:
		err = s.runAdmitJob(t, job)
	default:
		err = fmt.Errorf("%w: unknown job kind %q", qcc.ErrBadConfig, job.Kind)
	}
	if err == nil {
		return
	}
	if s.ctx.Err() != nil && job.State() != JobFailed && job.State() != JobDone {
		s.parkJob(job)
		return
	}
	s.failJob(job, err)
}

// defaultJobBackend is the daemon's scheduling-backend policy: submitted
// jobs race every backend (first verified plan in priority order wins)
// unless the configuration pins one explicitly.
const defaultJobBackend = "race"

// applyBackendPolicy fills the daemon's backend default into a parsed
// config. It runs on every path that computes a plan — job execution,
// the effective-config snapshot, and the journal-replay rebuild — so a
// restart solves with exactly the backend the deployed plan used.
func applyBackendPolicy(cfg *qcc.Config) {
	if cfg.Options.Backend == "" {
		cfg.Options.Backend = defaultJobBackend
	}
}

// runPlanJob computes a full plan from the job's configuration document,
// shedding per the degradation ladder when the problem is infeasible.
func (s *Server) runPlanJob(t *tenant, job *Job) error {
	cfg, err := qcc.Parse(job.Payload)
	if err != nil {
		return err
	}
	if ms := job.Deadline.Milliseconds(); ms > 0 {
		cfg.Options.TimeoutMs = ms
	}
	applyBackendPolicy(cfg)
	cfg.Obs = s.reg

	shed := make(map[string]bool)
	attempt := 0
	for {
		job.addAttempt()
		dep, err := qcc.Compute(configWithout(cfg, shed))
		if err == nil {
			return s.commitPlan(t, job, dep, shed, nil)
		}
		switch Classify(err) {
		case ClassTimeout:
			if attempt >= s.cfg.MaxRetries {
				return err
			}
			s.reg.Counter("etsn_service_jobs_retried_total").Inc()
			if !s.sleep(s.cfg.Backoff.Delay(attempt)) {
				return err
			}
			attempt++
		case ClassInfeasible:
			// Degradation ladder: qcc configurations carry no best-effort
			// flows (those exist only in the simulator), so the ladder
			// starts at its TCT rung — shed the loosest non-sharing TCT
			// stream and retry. ECT is never shed.
			victim := s.pickVictim(cfg, shed)
			if victim == "" {
				return err
			}
			shed[victim] = true
			s.reg.Counter("etsn_service_shed_streams_total").Inc()
		default:
			return err
		}
	}
}

// pickVictim orders the remaining TCT requirements by deadline slack on
// their shortest paths and returns the loosest non-sharing one, or "".
func (s *Server) pickVictim(cfg *qcc.Config, shed map[string]bool) string {
	network, err := cfg.BuildNetwork()
	if err != nil {
		return ""
	}
	tct, _, err := qcc.BuildStreams(network, cfg.Streams)
	if err != nil {
		return ""
	}
	skip := make(map[model.StreamID]bool, len(shed))
	for id := range shed {
		skip[model.StreamID(id)] = true
	}
	if v := faults.PickVictim(network, tct, skip); v != "" {
		return string(v)
	}
	// PickVictim's loosest-first ordering never selects a stream whose
	// slack is deeply negative — but such a stream is exactly what makes a
	// submitted problem infeasible. Fall back to the tightest remaining
	// non-sharing candidate (sharing streams still protected: they fund
	// ECT drain capacity).
	var best model.StreamID
	for _, st := range tct {
		if st.Share || skip[st.ID] {
			continue
		}
		if best == "" || st.E2E < e2eOf(tct, best) ||
			(st.E2E == e2eOf(tct, best) && st.ID < best) {
			best = st.ID
		}
	}
	return string(best)
}

func e2eOf(tct []*model.Stream, id model.StreamID) time.Duration {
	for _, st := range tct {
		if st.ID == id {
			return st.E2E
		}
	}
	return 0
}

// configWithout clones the config minus the shed streams.
func configWithout(cfg *qcc.Config, shed map[string]bool) *qcc.Config {
	if len(shed) == 0 {
		return cfg
	}
	cp := *cfg
	cp.Streams = make([]qcc.StreamRequirement, 0, len(cfg.Streams))
	for _, r := range cfg.Streams {
		if !shed[r.ID] {
			cp.Streams = append(cp.Streams, r)
		}
	}
	return &cp
}

// runAdmitJob admits additional streams into the tenant's live plan.
func (s *Server) runAdmitJob(t *tenant, job *Job) error {
	req, err := DecodeAdmit(bytes.NewReader(job.Payload), s.cfg.MaxBodyBytes)
	if err != nil {
		return err
	}
	ctrl, err := s.liveController(t)
	if err != nil {
		return err
	}
	// Any full replan the admission falls back to runs the backend the
	// request named (default: the daemon's race policy). Replayed jobs
	// re-decode the journaled payload, so the choice survives restarts.
	replan := req.Backend
	if replan == "" {
		replan = defaultJobBackend
	}
	backend, err := core.ParseBackend(replan)
	if err != nil {
		return fmt.Errorf("%w: %v", qcc.ErrBadConfig, err)
	}
	ctrl.ReplanBackend = backend
	prob, _, _ := ctrl.Deployed()
	newTCT, newECT, err := qcc.BuildStreams(prob.Network, req.Streams)
	if err != nil {
		return err
	}

	// The admission controller's full-replan budget follows the job
	// deadline: first attempt gets a quarter, doubling per retry.
	ctrl.BaseTimeout = job.Deadline / 4
	if ctrl.BaseTimeout <= 0 {
		ctrl.BaseTimeout = time.Second
	}

	attempt := 0
	for {
		job.addAttempt()
		rec, err := ctrl.Admit(newTCT, newECT)
		if err == nil {
			return s.commitAdmit(t, job, req, rec)
		}
		if Classify(err) == ClassTimeout && attempt < s.cfg.MaxRetries {
			s.reg.Counter("etsn_service_jobs_retried_total").Inc()
			if !s.sleep(s.cfg.Backoff.Delay(attempt)) {
				return err
			}
			attempt++
			continue
		}
		return err
	}
}

// liveController returns the tenant's live deployment controller,
// rebuilding it deterministically from the journaled effective
// configuration after a restart.
func (s *Server) liveController(t *tenant) (*faults.Controller, error) {
	t.mu.Lock()
	ctrl := t.ctrl
	effective := t.effective
	t.mu.Unlock()
	if ctrl != nil {
		return ctrl, nil
	}
	if len(effective) == 0 {
		return nil, fmt.Errorf("%w: tenant %q", ErrNoPlan, t.name)
	}
	cfg, err := qcc.Parse(effective)
	if err != nil {
		return nil, fmt.Errorf("rebuilding live plan: %w", err)
	}
	// New-format effective configs journal the backend explicitly; the
	// policy here only upgrades pre-backend journals, deterministically.
	applyBackendPolicy(cfg)
	cfg.Obs = s.reg
	dep, err := qcc.Compute(cfg)
	if err != nil {
		return nil, fmt.Errorf("rebuilding live plan: %w", err)
	}
	ctrl, err = faults.NewController(dep.Problem, dep.Result, dep.GCLs, nil)
	if err != nil {
		return nil, err
	}
	ctrl.Obs = s.reg
	t.mu.Lock()
	t.ctrl = ctrl
	t.mu.Unlock()
	return ctrl, nil
}

// commitPlan records a fresh full plan as the tenant's next version. The
// effective config drops the shed streams, so a restart rebuilds exactly
// the deployed plan.
func (s *Server) commitPlan(t *tenant, job *Job, dep *qcc.Deployment, shed map[string]bool, shedBE []string) error {
	cfg, err := qcc.Parse(job.Payload)
	if err != nil {
		return err
	}
	applyBackendPolicy(cfg)
	effectiveCfg := configWithout(cfg, shed)
	effectiveCfg.Obs, effectiveCfg.Phases = nil, nil
	effective, err := json.Marshal(effectiveCfg)
	if err != nil {
		return err
	}
	export, err := marshalExport(dep.Export())
	if err != nil {
		return err
	}

	ctrl, err := faults.NewController(dep.Problem, dep.Result, dep.GCLs, nil)
	if err != nil {
		return err
	}
	ctrl.Obs = s.reg

	shedTCT := sortedKeys(shed)
	t.mu.Lock()
	prev := tailExport(t.versions)
	version := nextVersion(t.versions)
	changed, _ := changedPortsVs(prev, export)
	pv := &PlanVersion{
		Version: version, JobID: job.ID, Export: export,
		ChangedPorts: changed, ShedTCT: shedTCT, ShedBE: shedBE,
	}
	t.versions = append(t.versions, pv)
	t.effective = effective
	t.ctrl = ctrl
	t.mu.Unlock()

	return s.finishJobDone(job, pv, effective)
}

// commitAdmit records an admission recovery as the tenant's next version
// and extends the effective config with the admitted streams (minus any
// deployed TCT the ladder shed to make room).
func (s *Server) commitAdmit(t *tenant, job *Job, req *AdmitRequest, rec *faults.Recovery) error {
	t.mu.Lock()
	effective := t.effective
	t.mu.Unlock()
	cfg, err := qcc.Parse(effective)
	if err != nil {
		return err
	}
	cfg.Streams = append(cfg.Streams, req.Streams...)
	shed := make(map[string]bool, len(rec.ShedTCT)+len(rec.ShedBE))
	shedTCT := make([]string, 0, len(rec.ShedTCT))
	for _, id := range rec.ShedTCT {
		shed[string(id)] = true
		shedTCT = append(shedTCT, string(id))
	}
	shedBE := make([]string, 0, len(rec.ShedBE))
	for _, id := range rec.ShedBE {
		shed[string(id)] = true
		shedBE = append(shedBE, string(id))
	}
	newEffective, err := json.Marshal(configWithout(cfg, shed))
	if err != nil {
		return err
	}
	dep := &qcc.Deployment{Network: rec.Problem.Network, Problem: rec.Problem,
		Result: rec.Result, GCLs: rec.GCLs}
	export, err := marshalExport(dep.Export())
	if err != nil {
		return err
	}

	t.mu.Lock()
	version := nextVersion(t.versions)
	changed := make([]string, 0, len(rec.ChangedPorts))
	for _, lid := range rec.ChangedPorts {
		changed = append(changed, lid.String())
	}
	pv := &PlanVersion{
		Version: version, JobID: job.ID, Export: export,
		ChangedPorts: changed, ShedTCT: shedTCT, ShedBE: shedBE,
		Incremental: rec.Incremental,
	}
	t.versions = append(t.versions, pv)
	t.effective = newEffective
	t.mu.Unlock()

	return s.finishJobDone(job, pv, newEffective)
}

// finishJobDone journals the terminal done record and completes the job.
func (s *Server) finishJobDone(job *Job, pv *PlanVersion, effective []byte) error {
	err := s.journal.append(journalRecord{
		Kind: "done", Job: job.ID, Tenant: job.Tenant, Version: pv.Version,
		Export: pv.Export, Effective: json.RawMessage(effective),
		Changed: pv.ChangedPorts, ShedTCT: pv.ShedTCT, ShedBE: pv.ShedBE,
	})
	job.finishDone(pv.Version, pv.ShedTCT, pv.ShedBE)
	s.reg.Counter("etsn_service_jobs_done_total").Inc()
	s.reg.Counter(obs.Labels("etsn_service_tenant_jobs_total", "tenant", job.Tenant, "state", "done")).Inc()
	return err
}

func (s *Server) failJob(job *Job, err error) {
	class := Classify(err)
	_ = s.journal.append(journalRecord{
		Kind: "failed", Job: job.ID, Tenant: job.Tenant,
		Class: class.String(), Error: err.Error(),
	})
	job.finishFailed(class, err.Error())
	s.reg.Counter(`etsn_service_jobs_failed_total{class="` + class.String() + `"}`).Inc()
	s.reg.Counter(obs.Labels("etsn_service_tenant_jobs_total", "tenant", job.Tenant, "state", "failed")).Inc()
}

func (s *Server) parkJob(job *Job) {
	_ = s.journal.append(journalRecord{Kind: "parked", Job: job.ID, Tenant: job.Tenant})
	job.park()
	s.reg.Counter("etsn_service_jobs_parked_total").Inc()
}

func (s *Server) tenantGet(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantFor(name)
}

// sleep waits interruptibly; false means shutdown interrupted it.
func (s *Server) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// BeginDrain flips the server into draining mode: /readyz goes 503 and new
// submissions are rejected, while queued and running jobs continue.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting work, give in-flight jobs up
// to DrainTimeout to finish, then journal-park whatever remains so the
// next startup's replay resumes it. Always closes the journal last.
func (s *Server) Shutdown() {
	s.BeginDrain()
	// Release dashboard SSE streams first so the HTTP server's own
	// drain is not held open by long-lived event streams.
	s.dash.Close()

	// Pull jobs that never started out of the queue and park them; workers
	// race with us for queue entries, which is fine either way.
	parked := true
	for parked {
		select {
		case job := <-s.queue:
			s.parkJob(job)
			s.mu.Lock()
			s.tenantFor(job.Tenant).inflight--
			s.mu.Unlock()
		default:
			parked = false
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Workers idle on the queue; cancelling the context is what releases
	// them. In-flight solves keep running until they observe the cancel at
	// their next retry/sleep point or complete within the drain budget.
	s.cancel()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		// Past the deadline: park every job still not terminal. A worker
		// finishing afterwards finds its job parked and drops the result;
		// replay re-runs the job deterministically.
		s.mu.Lock()
		var stuck []*Job
		for _, id := range s.jobOrder {
			j := s.jobs[id]
			if st := j.State(); st == JobQueued || st == JobRunning {
				stuck = append(stuck, j)
			}
		}
		s.mu.Unlock()
		for _, j := range stuck {
			s.parkJob(j)
		}
	}
	s.journal.close()
}

func marshalExport(exp *qcc.DeploymentExport) (json.RawMessage, error) {
	data, err := json.Marshal(exp)
	if err != nil {
		return nil, fmt.Errorf("plan export: %w", err)
	}
	return data, nil
}

func nextVersion(versions []*PlanVersion) int {
	if len(versions) == 0 {
		return 1
	}
	return versions[len(versions)-1].Version + 1
}

func tailExport(versions []*PlanVersion) json.RawMessage {
	if len(versions) == 0 {
		return nil
	}
	return versions[len(versions)-1].Export
}

// changedPortsVs lists ports whose gate program differs between two stored
// exports (nil prev means every port changed — the first rollout).
func changedPortsVs(prev, next json.RawMessage) ([]string, error) {
	nextGCLs, _, err := exportPrograms(next)
	if err != nil {
		return nil, err
	}
	var prevGCLs map[model.LinkID]*gcl.PortGCL
	if len(prev) > 0 {
		prevGCLs, _, err = exportPrograms(prev)
		if err != nil {
			return nil, err
		}
	}
	changed := gcl.ChangedPorts(prevGCLs, nextGCLs)
	out := make([]string, 0, len(changed))
	for _, lid := range changed {
		out = append(out, lid.String())
	}
	return out, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort; shed sets are small and this keeps
// the import list lean.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
