package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Shutdown() })
	return s, ts
}

func doJSON(t *testing.T, method, url, reqBody string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})

	// Health endpoints.
	resp, _ := doJSON(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", "")
	if resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	// Submit a plan job; 202 with a job id.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/tenants/acme/jobs", planConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	if snap.ID == "" || snap.Tenant != "acme" {
		t.Fatalf("snapshot: %+v", snap)
	}

	// Poll until done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+snap.ID, "")
		if resp.StatusCode != 200 {
			t.Fatalf("poll = %d", resp.StatusCode)
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.State == JobDone || snap.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.State != JobDone || snap.Version != 1 {
		t.Fatalf("job: %+v", snap)
	}

	// Plan endpoints.
	resp, body = doJSON(t, "GET", ts.URL+"/v1/tenants/acme/plans", "")
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version": 1`) {
		t.Fatalf("plans = %d: %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/v1/tenants/acme/plans/latest", "")
	if resp.StatusCode != 200 {
		t.Fatalf("plan latest = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Etsn-Plan-Version"); got != "1" {
		t.Fatalf("plan version header = %q", got)
	}
	var export map[string]any
	if err := json.Unmarshal(body, &export); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}

	// Admit streams, poll, then diff v1..v2.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/tenants/acme/streams", admitBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	for snap.State != JobDone && snap.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("admit stuck: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
		_, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+snap.ID, "")
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
	}
	if snap.State != JobDone || snap.Version != 2 {
		t.Fatalf("admit job: %+v", snap)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/v1/tenants/acme/diff?from=1&to=2", "")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "changed_ports") {
		t.Fatalf("diff = %d: %s", resp.StatusCode, body)
	}

	// Metrics must be populated Prometheus text.
	resp, body = doJSON(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{"etsn_service_jobs_accepted_total", "etsn_service_jobs_done_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})

	// Malformed JSON -> 400.
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/tenants/acme/jobs", `{"network":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed = %d", resp.StatusCode)
	}
	// Semantically invalid config (unroutable stream) -> 400.
	bad := strings.Replace(planConfig, `"talker": "D1"`, `"talker": "D9"`, 1)
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/tenants/acme/jobs", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unroutable = %d", resp.StatusCode)
	}
	// Empty admission -> 400.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/tenants/acme/streams", `{"streams": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty admit = %d", resp.StatusCode)
	}
	// Unknown job -> 404.
	resp, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/j-999", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	}
	// No plans yet -> 404.
	resp, _ = doJSON(t, "GET", ts.URL+"/v1/tenants/acme/plans", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no plans = %d", resp.StatusCode)
	}
	// Bad version selector -> 400.
	resp, _ = doJSON(t, "GET", ts.URL+"/v1/tenants/acme/plans/zero", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad version = %d", resp.StatusCode)
	}
}

func TestHTTPOverloadAndDrain(t *testing.T) {
	s, ts := newHTTPServer(t, Config{
		Workers:     1,
		QueueDepth:  1,
		TenantQuota: 1,
		SolveDelay:  300 * time.Millisecond,
	})

	resp, body := doJSON(t, "POST", ts.URL+"/v1/tenants/t1/jobs", planConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	// Tenant quota breach -> 429 with Retry-After.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/tenants/t1/jobs", planConfig)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota breach = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain: readyz flips to 503 and submissions are refused.
	s.BeginDrain()
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/tenants/t2/jobs", planConfig)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", resp.StatusCode)
	}
	// Liveness stays green during the drain.
	resp, _ = doJSON(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz while draining = %d", resp.StatusCode)
	}
}
