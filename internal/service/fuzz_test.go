package service

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"etsn/internal/core"
)

// FuzzDecodeSubmit hammers the daemon's plan-request decoder with arbitrary
// bytes. The contract: never panic, never accept something that the full
// pipeline validation would reject, and never leave work behind (the
// decoder is synchronous — goroutine growth is a leak).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte(planConfig))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network": {"devices": [], "switches": [], "links": []}, "streams": []}`))
	f.Add([]byte(`{"network":`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"network": {"devices": ["D1"], "switches": ["SW1"],
	  "links": [{"a": "D1", "b": "SW1", "bandwidth_bps": -5}]}, "streams": []}`))
	f.Add([]byte(`{"streams": [{"id": "x", "talker": "a", "listener": "a",
	  "type": "time-triggered", "period_us": -1}]}`))
	f.Add([]byte(`{"network": {"devices": ["D1", "D2"], "switches": ["SW1"],
	  "links": [{"a": "D1", "b": "SW1"}, {"a": "SW1", "b": "D2"}]},
	  "options": {"backend": "tabu"},
	  "streams": [{"id": "s", "talker": "D1", "listener": "D2",
	  "type": "time-triggered", "period_us": 4000, "deadline_us": 4000, "length_bytes": 100}]}`))
	f.Add([]byte(`{"options": {"backend": "quantum"}, "streams": []}`))
	f.Add(bytes.Repeat([]byte(`9`), 4096))

	before := runtime.NumGoroutine()
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeSubmit(bytes.NewReader(data), 1<<20)
		if err == nil {
			// Accepted configs must be fully buildable.
			if _, berr := cfg.BuildProblem(); berr != nil {
				t.Fatalf("accepted config does not build: %v", berr)
			}
		}
		if n := runtime.NumGoroutine(); n > before+50 {
			t.Fatalf("goroutine leak: %d -> %d", before, n)
		}
	})
}

// FuzzDecodeAdmit does the same for the stream-admission decoder.
func FuzzDecodeAdmit(f *testing.F) {
	f.Add([]byte(admitBody))
	f.Add([]byte(`{"streams": []}`))
	f.Add([]byte(`{"streams": [{}]}`))
	f.Add([]byte(`{"streams": [{"id": "a"}, {"id": "a"}]}`))
	f.Add([]byte(`{"streams": null}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(admitBodyBackend))
	f.Add([]byte(`{"backend": "quantum", "streams": [{"id": "a"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAdmit(bytes.NewReader(data), 1<<20)
		if err == nil {
			if len(req.Streams) == 0 {
				t.Fatal("accepted an empty admission")
			}
			if req.Backend != "" {
				if _, berr := core.ParseBackend(req.Backend); berr != nil {
					t.Fatalf("accepted unknown backend %q", req.Backend)
				}
			}
			seen := map[string]bool{}
			for _, s := range req.Streams {
				if s.ID == "" {
					t.Fatal("accepted a stream without an id")
				}
				if seen[s.ID] {
					t.Fatalf("accepted duplicate id %q", s.ID)
				}
				seen[s.ID] = true
			}
		}
	})
}

// TestDecodeSubmitSizeLimit pins the bounded-body behavior the fuzzers
// assume: oversized input is rejected as invalid, not buffered.
func TestDecodeSubmitSizeLimit(t *testing.T) {
	big := strings.Repeat(" ", 512) + planConfig
	if _, err := DecodeSubmit(strings.NewReader(big), 128); Classify(err) != ClassInvalid {
		t.Fatalf("oversize submit: %v", err)
	}
	if _, err := DecodeAdmit(strings.NewReader(big), 128); Classify(err) != ClassInvalid {
		t.Fatalf("oversize admit: %v", err)
	}
	if _, err := DecodeSubmit(strings.NewReader(planConfig), 0); err != nil {
		t.Fatalf("default limit rejected a valid config: %v", err)
	}
}

// TestServerLifecycleNoGoroutineLeak runs a full submit/solve/shutdown cycle
// and checks the worker pool and journal do not leak goroutines.
func TestServerLifecycleNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s := newTestServer(t, Config{})
		job, err := s.Submit("acme", KindPlan, []byte(planConfig))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job)
		s.Shutdown()
	}
	// Give exiting workers a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d after three server lifecycles", before, after)
	}
}
