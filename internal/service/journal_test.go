package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalRoundTrip checks the basic WAL contract: append records, replay
// them, get the same state back.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := []journalRecord{
		{Kind: "submitted", Job: "j-1", Tenant: "a", JobKind: KindPlan, Payload: json.RawMessage(`{}`), DeadlineMs: 5000},
		{Kind: "started", Job: "j-1"},
		{Kind: "done", Job: "j-1", Tenant: "a", Version: 1, Export: json.RawMessage(`{"e":1}`), Effective: json.RawMessage(`{"c":1}`)},
		{Kind: "submitted", Job: "j-2", Tenant: "b", JobKind: KindAdmit, Payload: json.RawMessage(`{"streams":[]}`)},
		{Kind: "started", Job: "j-2"},
		{Kind: "parked", Job: "j-2"},
		{Kind: "submitted", Job: "j-3", Tenant: "a", JobKind: KindPlan, Payload: json.RawMessage(`{}`)},
		{Kind: "failed", Job: "j-3", Tenant: "a", Class: "infeasible", Error: "no"},
	}
	for _, r := range records {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	st, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.lastSeq != int64(len(records)) {
		t.Fatalf("lastSeq = %d", st.lastSeq)
	}
	if len(st.jobs) != 3 {
		t.Fatalf("jobs = %d", len(st.jobs))
	}
	pend := st.pending()
	if len(pend) != 1 || pend[0].rec.Job != "j-2" {
		t.Fatalf("pending = %+v", pend)
	}
	if len(st.tenantDone["a"]) != 1 || st.tenantDone["a"][0].Version != 1 {
		t.Fatalf("tenantDone = %+v", st.tenantDone)
	}
}

// TestJournalDoneAfterParkedWins encodes the at-least-once contract: a drain
// parks a job, the worker's result lands anyway, and replay must prefer the
// done record so the job is not run a second time.
func TestJournalDoneAfterParkedWins(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(dir, 0)
	for _, r := range []journalRecord{
		{Kind: "submitted", Job: "j-1", Tenant: "a", JobKind: KindPlan, Payload: json.RawMessage(`{}`)},
		{Kind: "parked", Job: "j-1"},
		{Kind: "done", Job: "j-1", Tenant: "a", Version: 1, Export: json.RawMessage(`{}`), Effective: json.RawMessage(`{}`)},
	} {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	st, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.pending()) != 0 {
		t.Fatalf("parked-then-done job still pending: %+v", st.pending())
	}
	if st.jobs[0].terminal != "done" {
		t.Fatalf("terminal = %q", st.jobs[0].terminal)
	}
}

func TestJournalRejectsCorruption(t *testing.T) {
	write := func(t *testing.T, lines ...string) string {
		dir := t.TempDir()
		var buf bytes.Buffer
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	// Garbage in the middle is corruption.
	dir := write(t,
		`{"seq":1,"kind":"submitted","job":"j-1","tenant":"a","job_kind":"plan","payload":{}}`,
		`{"seq":2,"kind":"done","job`,
		`{"seq":3,"kind":"failed","job":"j-1","class":"internal"}`)
	if _, err := replayJournal(dir); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	// Sequence regression is corruption.
	dir = write(t,
		`{"seq":5,"kind":"submitted","job":"j-1","tenant":"a","job_kind":"plan","payload":{}}`,
		`{"seq":4,"kind":"started","job":"j-1"}`)
	if _, err := replayJournal(dir); err == nil {
		t.Fatal("sequence regression accepted")
	}
	// Double finish is corruption.
	dir = write(t,
		`{"seq":1,"kind":"submitted","job":"j-1","tenant":"a","job_kind":"plan","payload":{}}`,
		`{"seq":2,"kind":"failed","job":"j-1","class":"internal"}`,
		`{"seq":3,"kind":"done","job":"j-1","tenant":"a","version":1}`)
	if _, err := replayJournal(dir); err == nil {
		t.Fatal("double finish accepted")
	}
	// Terminal record for an unknown job is corruption.
	dir = write(t, `{"seq":1,"kind":"done","job":"j-9","tenant":"a","version":1}`)
	if _, err := replayJournal(dir); err == nil {
		t.Fatal("done without submission accepted")
	}
}

// TestJournalReplayTruncationProperty is the crash model: generate random
// valid journals, chop the file at every byte offset in the final record and
// at random offsets elsewhere in the tail, and require that replay (a) never
// errors when only the final line is damaged, and (b) reconstructs exactly
// the state of the complete-line prefix.
func TestJournalReplayTruncationProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		j, err := openJournal(dir, 0)
		if err != nil {
			t.Fatal(err)
		}

		// Random but transition-valid journal: jobs advance
		// submitted -> started -> {done, failed, parked[, done]}.
		type jobState struct {
			id       string
			terminal string
		}
		var jobs []*jobState
		nextID := 1
		nRecords := 3 + rng.Intn(25)
		for i := 0; i < nRecords; i++ {
			open := -1
			for k, js := range jobs {
				if js.terminal == "" || js.terminal == "parked" {
					open = k
					break
				}
			}
			if open == -1 || rng.Intn(3) == 0 {
				id := fmt.Sprintf("j-%d", nextID)
				nextID++
				jobs = append(jobs, &jobState{id: id})
				payload := json.RawMessage(fmt.Sprintf(`{"n":%d}`, rng.Intn(1000)))
				if err := j.append(journalRecord{Kind: "submitted", Job: id,
					Tenant: fmt.Sprintf("t%d", rng.Intn(3)), JobKind: KindPlan, Payload: payload}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			js := jobs[open]
			switch rng.Intn(4) {
			case 0:
				_ = j.append(journalRecord{Kind: "started", Job: js.id})
			case 1:
				_ = j.append(journalRecord{Kind: "done", Job: js.id, Tenant: "t0",
					Version: 1 + rng.Intn(5), Export: json.RawMessage(`{}`), Effective: json.RawMessage(`{}`)})
				js.terminal = "done"
			case 2:
				if js.terminal == "parked" {
					_ = j.append(journalRecord{Kind: "started", Job: js.id})
				} else {
					_ = j.append(journalRecord{Kind: "failed", Job: js.id, Class: "timeout", Error: "x"})
					js.terminal = "failed"
				}
			case 3:
				if js.terminal != "parked" {
					_ = j.append(journalRecord{Kind: "parked", Job: js.id})
					js.terminal = "parked"
				}
			}
		}
		j.close()

		full, err := os.ReadFile(filepath.Join(dir, journalName))
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(full, []byte("\n"))

		// Truncation points: every prefix of the last record plus a few
		// random cuts anywhere in the file.
		cuts := []int{len(full)}
		lastStart := len(full) - len(lines[len(lines)-2]) // lines ends with an empty tail element
		for c := lastStart; c < len(full); c += 1 + rng.Intn(8) {
			cuts = append(cuts, c)
		}
		for k := 0; k < 5; k++ {
			cuts = append(cuts, rng.Intn(len(full)+1))
		}

		for _, cut := range cuts {
			tdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(tdir, journalName), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// The oracle: complete lines strictly before the cut.
			var wantSeq int64
			var wantJobs int
			off := 0
			for _, l := range lines {
				// A record survives the cut if its JSON content is intact —
				// losing only the trailing newline still parses.
				content := bytes.TrimSuffix(l, []byte("\n"))
				if len(l) == 0 || off+len(content) > cut {
					break
				}
				var rec journalRecord
				if err := json.Unmarshal(content, &rec); err != nil {
					t.Fatal(err)
				}
				wantSeq = rec.Seq
				if rec.Kind == "submitted" {
					wantJobs++
				}
				off += len(l)
			}
			st, err := replayJournal(tdir)
			if err != nil {
				t.Fatalf("seed %d cut %d: replay: %v", seed, cut, err)
			}
			if st.lastSeq != wantSeq {
				t.Fatalf("seed %d cut %d: lastSeq %d want %d", seed, cut, st.lastSeq, wantSeq)
			}
			if len(st.jobs) != wantJobs {
				t.Fatalf("seed %d cut %d: jobs %d want %d", seed, cut, len(st.jobs), wantJobs)
			}
		}
	}
}
