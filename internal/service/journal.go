package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The job journal is the daemon's write-ahead log: every job transition is
// appended (and fsynced) to journal.jsonl under the data directory BEFORE
// the transition is acknowledged to the client. A `kill -9` at any point
// therefore loses at most work, never acknowledged state: on restart,
// Replay folds the log back into (1) the terminal history — every done
// job's plan version, export, and the tenant's cumulative effective config
// — and (2) the set of jobs that were accepted but never finished, which
// the server re-enqueues.
//
// Record kinds and their WAL roles:
//
//	submitted  job accepted (202 sent after the fsync) — payload included
//	started    a worker picked the job up (informational)
//	done       plan version produced — export + effective config included
//	failed     terminal failure with its class
//	parked     graceful drain interrupted the job; resume on restart
//
// A torn final line (the crash landed mid-append) is expected and ignored;
// any earlier corruption is an error. The journal is append-only; plan
// exports ride in the done records, so serving versioned plans after a
// restart needs no re-solving.
type journalRecord struct {
	Seq     int64           `json:"seq"`
	Kind    string          `json:"kind"`
	Job     string          `json:"job"`
	Tenant  string          `json:"tenant,omitempty"`
	JobKind JobKind         `json:"job_kind,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// DeadlineMs preserves the job's deadline across replay.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Version and Export describe the produced plan (kind "done").
	Version int             `json:"version,omitempty"`
	Export  json.RawMessage `json:"export,omitempty"`
	// Effective is the tenant's cumulative configuration after this job:
	// base config plus every admitted stream. Replay rebuilds live
	// controllers from it deterministically.
	Effective json.RawMessage `json:"effective,omitempty"`
	Changed   []string        `json:"changed_ports,omitempty"`
	ShedTCT   []string        `json:"shed_tct,omitempty"`
	ShedBE    []string        `json:"shed_be,omitempty"`
	Class     string          `json:"class,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// journal is the append side. Appends are serialized and fsynced; a closed
// journal drops writes (the process is exiting and the records would be
// re-derived on replay anyway).
type journal struct {
	mu     sync.Mutex
	f      *os.File
	seq    int64
	closed bool
}

const journalName = "journal.jsonl"

// openJournal opens (creating if needed) the journal in dir for appending.
func openJournal(dir string, lastSeq int64) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal open: %w", err)
	}
	return &journal{f: f, seq: lastSeq}, nil
}

// append writes one record durably. The sequence number is assigned here.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.seq++
	rec.Seq = j.seq
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal encode: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.closed = true
		_ = j.f.Close()
	}
}

// replayedJob is one job reconstructed from the log.
type replayedJob struct {
	rec      journalRecord // the submitted record
	terminal string        // "", "done", "failed", or "parked"
	doneRec  *journalRecord
	class    string
	errText  string
	started  bool
}

// replayState is everything Replay recovers from a journal.
type replayState struct {
	lastSeq int64
	// jobs in submission order.
	jobs []*replayedJob
	// tenantDone maps each tenant to its done records in version order.
	tenantDone map[string][]*journalRecord
}

// pending returns the replayed jobs that never reached a terminal state, in
// submission order — the re-enqueue set.
func (s *replayState) pending() []*replayedJob {
	var out []*replayedJob
	for _, rj := range s.jobs {
		if rj.terminal == "" || rj.terminal == "parked" {
			out = append(out, rj)
		}
	}
	return out
}

// replayJournal reads dir's journal, tolerating a torn final line. A
// missing journal is an empty state.
func replayJournal(dir string) (*replayState, error) {
	st := &replayState{tenantDone: make(map[string][]*journalRecord)}
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal open: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*replayedJob)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	var prevBad bool
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if prevBad {
			// A malformed record followed by more records is corruption,
			// not a torn tail.
			return nil, fmt.Errorf("journal: malformed record at line %d", lineNo-1)
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			prevBad = true
			continue
		}
		if rec.Seq <= st.lastSeq {
			return nil, fmt.Errorf("journal: sequence went backwards at line %d (%d after %d)",
				lineNo, rec.Seq, st.lastSeq)
		}
		st.lastSeq = rec.Seq
		switch rec.Kind {
		case "submitted":
			if byID[rec.Job] != nil {
				return nil, fmt.Errorf("journal: job %s submitted twice", rec.Job)
			}
			rj := &replayedJob{rec: rec}
			byID[rec.Job] = rj
			st.jobs = append(st.jobs, rj)
		case "started":
			if rj := byID[rec.Job]; rj != nil {
				rj.started = true
			}
		case "done":
			rj := byID[rec.Job]
			if rj == nil {
				return nil, fmt.Errorf("journal: job %s done without submission", rec.Job)
			}
			if rj.terminal == "done" || rj.terminal == "failed" {
				return nil, fmt.Errorf("journal: job %s finished twice", rec.Job)
			}
			rj.terminal = "done"
			cp := rec
			rj.doneRec = &cp
			st.tenantDone[rec.Tenant] = append(st.tenantDone[rec.Tenant], &cp)
		case "failed":
			rj := byID[rec.Job]
			if rj == nil {
				return nil, fmt.Errorf("journal: job %s failed without submission", rec.Job)
			}
			if rj.terminal == "done" || rj.terminal == "failed" {
				return nil, fmt.Errorf("journal: job %s finished twice", rec.Job)
			}
			rj.terminal = "failed"
			rj.class = rec.Class
			rj.errText = rec.Error
		case "parked":
			if rj := byID[rec.Job]; rj != nil && rj.terminal == "" {
				rj.terminal = "parked"
			}
		default:
			return nil, fmt.Errorf("journal: unknown record kind %q at line %d", rec.Kind, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal read: %w", err)
	}
	for _, recs := range st.tenantDone {
		sort.Slice(recs, func(i, k int) bool { return recs[i].Version < recs[k].Version })
	}
	return st, nil
}
