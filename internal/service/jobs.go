package service

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"etsn/internal/core"
	"etsn/internal/qcc"
)

// JobKind distinguishes the two kinds of scheduling work the daemon runs.
type JobKind string

const (
	// KindPlan computes a full plan from a complete configuration document,
	// replacing the tenant's deployed plan.
	KindPlan JobKind = "plan"
	// KindAdmit incrementally admits additional streams into the tenant's
	// live plan (full-replan fallback included).
	KindAdmit JobKind = "admit"
)

// JobState is the lifecycle of one job. Terminal states are JobDone and
// JobFailed; JobParked is the journaled not-yet-terminal state a graceful
// drain leaves behind for the next process to resume.
type JobState string

const (
	// JobQueued: accepted, journaled, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is solving it.
	JobRunning JobState = "running"
	// JobDone: a plan version was produced.
	JobDone JobState = "done"
	// JobFailed: terminally failed (see Class and Error).
	JobFailed JobState = "failed"
	// JobParked: interrupted by a drain before completion; resumed on the
	// next startup's journal replay.
	JobParked JobState = "parked"
)

// Job is one unit of scheduling work. Fields under mu change as the job
// progresses; everything else is immutable after submission.
type Job struct {
	ID        string
	Tenant    string
	Kind      JobKind
	Payload   []byte // raw request body, journaled verbatim for replay
	Deadline  time.Duration
	Recovered bool // re-enqueued by journal replay rather than submitted

	mu       sync.Mutex
	state    JobState
	class    Class
	errText  string
	version  int // plan version produced (JobDone)
	attempts int
	shedTCT  []string
	shedBE   []string
	done     chan struct{}
}

func newJob(id, tenant string, kind JobKind, payload []byte, deadline time.Duration) *Job {
	return &Job{
		ID:       id,
		Tenant:   tenant,
		Kind:     kind,
		Payload:  payload,
		Deadline: deadline,
		state:    JobQueued,
		done:     make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal (or parked) state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is the externally visible state of a job.
type Snapshot struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	Kind      JobKind  `json:"kind"`
	State     JobState `json:"state"`
	Class     string   `json:"class,omitempty"`
	Error     string   `json:"error,omitempty"`
	Version   int      `json:"plan_version,omitempty"`
	Attempts  int      `json:"attempts,omitempty"`
	ShedTCT   []string `json:"shed_tct,omitempty"`
	ShedBE    []string `json:"shed_be,omitempty"`
	Recovered bool     `json:"recovered,omitempty"`
}

// Snapshot returns a copy of the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Tenant:    j.Tenant,
		Kind:      j.Kind,
		State:     j.state,
		Version:   j.version,
		Attempts:  j.attempts,
		ShedTCT:   append([]string(nil), j.shedTCT...),
		ShedBE:    append([]string(nil), j.shedBE...),
		Recovered: j.Recovered,
	}
	if j.state == JobFailed {
		s.Class = j.class.String()
		s.Error = j.errText
	}
	return s
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

func (j *Job) addAttempt() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
}

// settled reports whether the job already left the queued/running states.
// Transitions are first-write-wins: a drain parking a job races with the
// worker finishing it, and whichever lands first sticks (the journal keeps
// both records; replay resolves them with at-least-once semantics).
func (j *Job) settled() bool {
	return j.state == JobDone || j.state == JobFailed || j.state == JobParked
}

func (j *Job) finishDone(version int, shedTCT, shedBE []string) {
	j.mu.Lock()
	if j.settled() {
		j.mu.Unlock()
		return
	}
	j.state = JobDone
	j.version = version
	j.shedTCT = shedTCT
	j.shedBE = shedBE
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) finishFailed(class Class, errText string) {
	j.mu.Lock()
	if j.settled() {
		j.mu.Unlock()
		return
	}
	j.state = JobFailed
	j.class = class
	j.errText = errText
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) park() {
	j.mu.Lock()
	if j.settled() {
		j.mu.Unlock()
		return
	}
	j.state = JobParked
	j.mu.Unlock()
	close(j.done)
}

// maxBodyBytes is the default request-body bound; oversized submissions
// are invalid input, not a reason to buffer without limit.
const defaultMaxBodyBytes = 4 << 20

// DecodeSubmit parses and semantically validates a plan-job request body (a
// qcc configuration document). Everything it rejects wraps qcc.ErrBadConfig
// so Classify maps it to HTTP 400, and it never panics on hostile input
// (fuzzed). The returned config has been fully problem-checked: topology
// builds, every stream routes.
func DecodeSubmit(r io.Reader, limit int64) (*qcc.Config, error) {
	if limit <= 0 {
		limit = defaultMaxBodyBytes
	}
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", qcc.ErrBadConfig, err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", qcc.ErrBadConfig, limit)
	}
	cfg, err := qcc.Parse(data)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.BuildProblem(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// AdmitRequest is the body of an incremental stream-admission job.
type AdmitRequest struct {
	Streams []qcc.StreamRequirement `json:"streams"`
	// Backend optionally names the scheduling backend for any full replan
	// the admission falls back to (auto, placer, greedy, tabu, anneal,
	// smt, smt-incremental, race). Empty defaults to the daemon's policy:
	// race. The incremental fast path is backend-independent.
	Backend string `json:"backend,omitempty"`
}

// DecodeAdmit parses and validates a stream-admission request body. Routing
// (and thus full semantic validation) happens against the tenant's live
// network at execution time; here the requirements are checked standalone.
func DecodeAdmit(r io.Reader, limit int64) (*AdmitRequest, error) {
	if limit <= 0 {
		limit = defaultMaxBodyBytes
	}
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", qcc.ErrBadConfig, err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", qcc.ErrBadConfig, limit)
	}
	var req AdmitRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("%w: %v", qcc.ErrBadConfig, err)
	}
	if len(req.Streams) == 0 {
		return nil, fmt.Errorf("%w: no streams to admit", qcc.ErrBadConfig)
	}
	if _, err := core.ParseBackend(req.Backend); err != nil {
		return nil, fmt.Errorf("%w: %v", qcc.ErrBadConfig, err)
	}
	seen := make(map[string]bool, len(req.Streams))
	for i := range req.Streams {
		s := &req.Streams[i]
		if err := s.Validate(i); err != nil {
			return nil, err
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("%w: duplicate stream id %q", qcc.ErrBadStream, s.ID)
		}
		seen[s.ID] = true
	}
	return &req, nil
}
