// daemongate is the check.sh end-to-end gate for etsn-cncd. It exercises
// the daemon the way an operator would — over HTTP against a real process —
// and asserts the three robustness contracts:
//
//  1. Service: the paper-testbed scenario submits, solves, and yields a
//     feasible versioned plan, with /metrics populated.
//  2. Overload: a 4-tenant submission burst is absorbed per policy — every
//     response is 202 or 429 (+Retry-After), degradation sheds only the
//     doomed TCT stream, and no admitted ECT stream is ever dropped.
//  3. Crash: SIGKILL mid-solve, restart on the same data directory, and the
//     journal replay resumes the interrupted job to completion.
//
// Usage: daemongate -bin ./etsn-cncd -config scenario.json -data DIR
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

var client = &http.Client{Timeout: 10 * time.Second}

func main() {
	bin := flag.String("bin", "", "path to the etsn-cncd binary")
	config := flag.String("config", "", "path to the scenario configuration (qcc JSON)")
	data := flag.String("data", "", "daemon data directory (journal lives here)")
	flag.Parse()
	if *bin == "" || *config == "" || *data == "" {
		fmt.Fprintln(os.Stderr, "daemongate: -bin, -config, and -data are required")
		os.Exit(2)
	}
	if err := runGate(*bin, *config, *data); err != nil {
		fmt.Fprintln(os.Stderr, "daemongate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("daemongate: OK")
}

func runGate(bin, configPath, dataDir string) error {
	scenario, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}

	// Tight limits make the overload phase deterministic: one worker, a
	// two-deep queue, one job in flight per tenant, and an injected 300ms
	// solve delay so bursts pile up (and SIGKILL lands mid-solve).
	args := []string{"-data", dataDir, "-listen", "127.0.0.1:0",
		"-workers", "1", "-queue", "2", "-tenant-quota", "1",
		"-solve-delay", "300ms", "-drain-timeout", "2s"}

	daemon, base, err := startDaemon(bin, args)
	if err != nil {
		return err
	}
	defer func() {
		if daemon.Process != nil {
			_ = daemon.Process.Kill()
			_, _ = daemon.Process.Wait()
		}
	}()

	// ---- Phase 1: the paper-testbed scenario produces a feasible plan.
	fmt.Println("daemongate: phase 1: scenario plan")
	snap, err := submitAndWait(base, "line1", "jobs", scenario)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if snap.State != "done" || snap.Version != 1 {
		return fmt.Errorf("scenario job: %+v", snap)
	}
	if len(snap.ShedTCT) != 0 || len(snap.ShedBE) != 0 {
		return fmt.Errorf("feasible scenario shed %v/%v", snap.ShedTCT, snap.ShedBE)
	}
	export, err := get(base + "/v1/tenants/line1/plans/latest")
	if err != nil {
		return err
	}
	if !strings.Contains(string(export), "gcls") {
		return fmt.Errorf("plan export has no gate programs: %.200s", export)
	}
	// The paper scenario's ECT stream (s2) must hold reservations.
	if !strings.Contains(string(export), "s2/") {
		return fmt.Errorf("plan export lost the ECT reservations")
	}
	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"etsn_service_jobs_accepted_total", "etsn_service_jobs_done_total", "etsn_service_queue_depth"} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}

	// ---- Phase 2: 4-tenant overload burst.
	fmt.Println("daemongate: phase 2: overload burst")
	// Each burst config carries a doomed non-sharing TCT stream with an
	// impossible deadline: the degradation ladder must shed exactly it and
	// keep the ECT stream.
	doomed := strings.Replace(string(scenario), `"streams": [`, `"streams": [
    {"id": "doomed", "talker": "D3", "listener": "D1", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 2, "payload_bytes": 500},`, 1)
	accepted := make(map[string]string) // job id -> tenant
	var rejected int
	for round := 0; round < 3; round++ {
		for tn := 1; tn <= 4; tn++ {
			tenant := fmt.Sprintf("burst%d", tn)
			resp, body, err := post(base+"/v1/tenants/"+tenant+"/jobs", []byte(doomed))
			if err != nil {
				return fmt.Errorf("burst submit: %w", err)
			}
			switch resp.StatusCode {
			case http.StatusAccepted:
				var s snapshot
				if err := json.Unmarshal(body, &s); err != nil {
					return fmt.Errorf("burst snapshot: %w", err)
				}
				accepted[s.ID] = tenant
			case http.StatusTooManyRequests:
				rejected++
				if resp.Header.Get("Retry-After") == "" {
					return fmt.Errorf("429 without Retry-After")
				}
			default:
				return fmt.Errorf("burst response %d: %.200s", resp.StatusCode, body)
			}
		}
	}
	if len(accepted) == 0 {
		return fmt.Errorf("overload burst: nothing accepted")
	}
	if rejected == 0 {
		return fmt.Errorf("overload burst: nothing rejected (12 submissions, queue 2, quota 1)")
	}
	fmt.Printf("daemongate: burst: %d accepted, %d rejected\n", len(accepted), rejected)
	for id, tenant := range accepted {
		s, err := waitJob(base, id)
		if err != nil {
			return fmt.Errorf("burst job %s: %w", id, err)
		}
		if s.State != "done" {
			return fmt.Errorf("burst job %s: %+v", id, s)
		}
		// The ladder shed the doomed TCT stream and nothing else; the
		// admitted ECT stream is never dropped.
		if len(s.ShedTCT) != 1 || s.ShedTCT[0] != "doomed" {
			return fmt.Errorf("burst job %s shed %v, want [doomed]", id, s.ShedTCT)
		}
		exp, err := get(base + "/v1/tenants/" + tenant + "/plans/latest")
		if err != nil {
			return err
		}
		if !strings.Contains(string(exp), "s2/") {
			return fmt.Errorf("tenant %s lost its ECT stream under overload", tenant)
		}
	}

	// ---- Phase 3: SIGKILL mid-solve, restart, journal recovery.
	fmt.Println("daemongate: phase 3: crash recovery")
	resp, body, err := post(base+"/v1/tenants/crash/jobs", scenario)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("crash submit: %d %v", resp.StatusCode, err)
	}
	var crashJob snapshot
	if err := json.Unmarshal(body, &crashJob); err != nil {
		return err
	}
	// Wait until the worker has the job (the 300ms solve delay keeps it
	// mid-flight), then SIGKILL — no drain, no journal close.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := getJob(base, crashJob.ID)
		if err != nil {
			return err
		}
		if s.State == "running" {
			break
		}
		if s.State == "done" || s.State == "failed" {
			return fmt.Errorf("crash job finished before the kill: %+v", s)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("crash job never started: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := daemon.Process.Kill(); err != nil {
		return err
	}
	_, _ = daemon.Process.Wait()

	// Restart without the solve delay; replay must resume the job.
	daemon2, base2, err := startDaemon(bin, []string{
		"-data", dataDir, "-listen", "127.0.0.1:0", "-drain-timeout", "5s"})
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer func() {
		if daemon2.Process != nil {
			_ = daemon2.Process.Kill()
			_, _ = daemon2.Process.Wait()
		}
	}()
	s, err := waitJob(base2, crashJob.ID)
	if err != nil {
		return fmt.Errorf("recovered job: %w", err)
	}
	if s.State != "done" || !s.Recovered {
		return fmt.Errorf("job after crash: %+v (want done, recovered)", s)
	}
	if _, err := get(base2 + "/v1/tenants/crash/plans/latest"); err != nil {
		return fmt.Errorf("crash tenant plan: %w", err)
	}
	// Pre-crash state must also have survived: the scenario tenant's plan
	// and the burst tenants' exports are served straight from the journal.
	if _, err := get(base2 + "/v1/tenants/line1/plans/latest"); err != nil {
		return fmt.Errorf("line1 plan lost across crash: %w", err)
	}
	metrics, err = get(base2 + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(string(metrics), "etsn_service_jobs_recovered_total") {
		return fmt.Errorf("restart /metrics missing the recovery counter")
	}

	// Graceful exit: SIGTERM must drain and return success.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	state, err := daemon2.Process.Wait()
	if err != nil {
		return err
	}
	if !state.Success() {
		return fmt.Errorf("daemon exited %s after SIGTERM", state)
	}
	daemon2.Process = nil
	return nil
}

type snapshot struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     string   `json:"state"`
	Class     string   `json:"class"`
	Error     string   `json:"error"`
	Version   int      `json:"plan_version"`
	ShedTCT   []string `json:"shed_tct"`
	ShedBE    []string `json:"shed_be"`
	Recovered bool     `json:"recovered"`
}

// startDaemon launches the binary and parses "listening on ADDR" from its
// stdout, then waits for /healthz.
func startDaemon(bin string, args []string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		base := "http://" + addr
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := get(base + "/healthz"); err == nil {
				return cmd, base, nil
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				return nil, "", fmt.Errorf("daemon never became healthy")
			}
			time.Sleep(20 * time.Millisecond)
		}
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("daemon never printed its listen address")
	}
}

func submitAndWait(base, tenant, endpoint string, body []byte) (*snapshot, error) {
	resp, data, err := post(base+"/v1/tenants/"+tenant+"/"+endpoint, body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit %d: %.300s", resp.StatusCode, data)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return waitJob(base, s.ID)
}

func waitJob(base, id string) (*snapshot, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		s, err := getJob(base, id)
		if err != nil {
			return nil, err
		}
		if s.State == "done" || s.State == "failed" {
			return s, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s stuck in %s", id, s.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func getJob(base, id string) (*snapshot, error) {
	data, err := get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

func get(url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %.200s", url, resp.StatusCode, data)
	}
	return data, nil
}

func post(url string, body []byte) (*http.Response, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, data, nil
}
