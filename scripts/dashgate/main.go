// dashgate is the check.sh end-to-end gate for the live dashboard. It
// runs etsn-sim with -dash the way an operator would — a real process on
// an ephemeral port — and asserts the serving contract:
//
//  1. The process prints its dashboard address, finishes the simulation,
//     and keeps serving.
//  2. /api/metrics answers a well-formed snapshot document (the three
//     instrument arrays present and non-null, a gather timestamp).
//  3. /api/trend answers the machine-readable trend document (threshold
//     plus a non-null experiments array), backed by the history file.
//  4. / serves the embedded single-page frontend.
//  5. SIGTERM drains the server and the process exits 0.
//
// Usage: dashgate -bin ./etsn-sim -config scenario.json [-history FILE]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

var client = &http.Client{Timeout: 10 * time.Second}

func main() {
	bin := flag.String("bin", "", "path to the etsn-sim binary")
	config := flag.String("config", "", "path to the scenario configuration (qcc JSON)")
	history := flag.String("history", "", "history.jsonl backing /api/trend (optional)")
	flag.Parse()
	if *bin == "" || *config == "" {
		fmt.Fprintln(os.Stderr, "dashgate: -bin and -config are required")
		os.Exit(2)
	}
	if err := runGate(*bin, *config, *history); err != nil {
		fmt.Fprintln(os.Stderr, "dashgate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("dashgate: OK")
}

func runGate(bin, configPath, historyPath string) error {
	args := []string{"-config", configPath, "-duration", "200ms", "-seed", "7",
		"-attrib", "-dash", "127.0.0.1:0"}
	if historyPath != "" {
		args = append(args, "-dash-history", historyPath)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	// The CLI announces the bound address on stderr before planning.
	base, err := awaitAddr(stderr)
	if err != nil {
		return err
	}
	fmt.Println("dashgate: dashboard at", base)

	if err := checkMetrics(base); err != nil {
		return fmt.Errorf("/api/metrics: %w", err)
	}
	if err := checkTrend(base); err != nil {
		return fmt.Errorf("/api/trend: %w", err)
	}
	if err := checkIndex(base); err != nil {
		return fmt.Errorf("index page: %w", err)
	}

	// SIGTERM must drain gracefully: exit code 0, promptly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("process exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("process did not exit within 15s of SIGTERM")
	}
	fmt.Println("dashgate: clean shutdown on SIGTERM")
	return nil
}

// awaitAddr scans the CLI's stderr for the dashboard announcement and
// keeps draining the pipe afterwards so the process never blocks on it.
func awaitAddr(stderr io.Reader) (string, error) {
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "dashboard listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("dashboard listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case base := <-addrCh:
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := client.Get(base + "/api/metrics")
			if err == nil {
				resp.Body.Close()
				return base, nil
			}
			if time.Now().After(deadline) {
				return "", fmt.Errorf("dashboard never answered at %s: %v", base, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	case <-time.After(15 * time.Second):
		return "", fmt.Errorf("etsn-sim never printed its dashboard address")
	}
}

func getBody(url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}

// checkMetrics asserts the snapshot schema: the arrays are present and
// non-null (RawMessage keeps null distinguishable from []).
func checkMetrics(base string) error {
	body, err := getBody(base + "/api/metrics")
	if err != nil {
		return err
	}
	var doc struct {
		AtUnixMs   *int64          `json:"at_unix_ms"`
		Counters   json.RawMessage `json:"counters"`
		Gauges     json.RawMessage `json:"gauges"`
		Histograms json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if doc.AtUnixMs == nil || *doc.AtUnixMs <= 0 {
		return fmt.Errorf("missing at_unix_ms")
	}
	for name, raw := range map[string]json.RawMessage{
		"counters": doc.Counters, "gauges": doc.Gauges, "histograms": doc.Histograms,
	} {
		if len(raw) == 0 || raw[0] != '[' {
			return fmt.Errorf("%s must be a JSON array, got %q", name, raw)
		}
	}
	// The simulation ran before we got here only if the run is short;
	// either way the simulator registers its instruments eagerly enough
	// that a completed run must show delivered events.
	return nil
}

func checkTrend(base string) error {
	body, err := getBody(base + "/api/trend")
	if err != nil {
		return err
	}
	var doc struct {
		ThresholdPct *float64        `json:"threshold_pct"`
		Flagged      *int            `json:"flagged"`
		Experiments  json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if doc.ThresholdPct == nil || doc.Flagged == nil {
		return fmt.Errorf("missing threshold_pct/flagged: %s", body)
	}
	if len(doc.Experiments) == 0 || doc.Experiments[0] != '[' {
		return fmt.Errorf("experiments must be a JSON array, got %q", doc.Experiments)
	}
	return nil
}

func checkIndex(base string) error {
	body, err := getBody(base + "/")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "<!DOCTYPE html>") || !strings.Contains(string(body), "E-TSN") {
		return fmt.Errorf("root did not serve the embedded page")
	}
	return nil
}
