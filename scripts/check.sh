#!/bin/sh
# check.sh — the tier-1 gate. Everything a change must pass before merge:
# vet, build, the full test suite under the race detector, and a short
# fuzz smoke over the corpus seeds of every fuzz target.
#
# Usage: ./scripts/check.sh            (from the repository root)
#        FUZZTIME=10s ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-5s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test ./internal/qcc/ -run=^$ -fuzz=FuzzParse$ -fuzztime="$FUZZTIME"
go test ./internal/qcc/ -run=^$ -fuzz=FuzzParseDeployment -fuzztime="$FUZZTIME"
go test ./internal/smt/ -run=^$ -fuzz=FuzzSolve -fuzztime="$FUZZTIME"

echo "==> OK"
