#!/bin/sh
# check.sh — the tier-1 gate. Everything a change must pass before merge:
# vet, build, the full test suite under the race detector, a one-iteration
# benchmark smoke, a bench-artifact round trip (emit BENCH_smoke.json with
# etsn-bench, fail if it does not validate), an attribution round trip
# (etsn-sim -attrib -trace piped through etsn-trace must reproduce the
# committed golden report), the end-to-end daemon gate (etsn-cncd under
# overload and a SIGKILL mid-solve must recover from its journal), the
# dashboard gate (etsn-sim -dash must serve schema-valid /api/metrics and
# /api/trend documents and drain cleanly on SIGTERM), and a
# short fuzz smoke over the corpus seeds of every fuzz target. Each bench
# refresh appends its headline wall time to bench/history.jsonl so
# regressions are visible across runs.
#
# Usage: ./scripts/check.sh            (from the repository root)
#        FUZZTIME=10s ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-5s}"
# The CDCL-vs-reference differential fuzz gets a longer default: it is the
# primary guard against search-core unsoundness.
DIFF_FUZZTIME="${DIFF_FUZZTIME:-10s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/smt/... (solver core, explicit)"
go test -race -count=1 ./internal/smt/...

echo "==> go test -race ./internal/psim/... (parallel engine, explicit)"
go test -race -count=1 ./internal/psim/...

echo "==> go test -race ./internal/dash/... (dashboard, explicit)"
# The dashboard suite includes goroutine-leak and SSE-drain checks that
# must hold under the race detector.
go test -race -count=1 ./internal/dash/...

echo "==> go test -race decomposition suite (conflict-graph scheduling + route cache, explicit)"
# Per-component solves run concurrently and the route cache promotes
# overflow entries under concurrent readers; both must hold under the race
# detector every run.
go test -race -count=1 -run 'TestDecompose|TestConflictComponents' ./internal/core/
go test -race -count=1 -run 'TestRouteCacheConcurrentReaders' ./internal/model/

echo "==> benchmark smoke (-benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "==> bench artifact smoke (BENCH_smoke.json)"
BENCHDIR="$(mktemp -d)"
trap 'rm -rf "$BENCHDIR"' EXIT
go build -o "$BENCHDIR/etsn-bench" ./cmd/etsn-bench
"$BENCHDIR/etsn-bench" -experiment headline -duration 300ms \
    -bench-dir "$BENCHDIR" -bench-name smoke >/dev/null
"$BENCHDIR/etsn-bench" -check-bench "$BENCHDIR/BENCH_smoke.json"

echo "==> sharded-engine smoke (headline under -engine shard -shards 4)"
# The parallel engine must run the headline experiment end to end; its
# per-stream tables are identical to the sequential engine's by design.
"$BENCHDIR/etsn-bench" -experiment headline -duration 300ms \
    -engine shard -shards 4 \
    -bench-dir "$BENCHDIR" -bench-name smoke-shard >/dev/null
"$BENCHDIR/etsn-bench" -check-bench "$BENCHDIR/BENCH_smoke-shard.json"

echo "==> trace round trip (etsn-sim -attrib | etsn-trace vs golden)"
go build -o "$BENCHDIR/etsn-sim" ./cmd/etsn-sim
go build -o "$BENCHDIR/etsn-trace" ./cmd/etsn-trace
"$BENCHDIR/etsn-sim" -config scripts/testdata/trace-config.json \
    -duration 200ms -seed 7 -attrib -trace "$BENCHDIR/trace.jsonl" >/dev/null
"$BENCHDIR/etsn-trace" "$BENCHDIR/trace.jsonl" >"$BENCHDIR/trace-report.txt"
diff -u scripts/testdata/trace-report.golden "$BENCHDIR/trace-report.txt"

echo "==> bench artifacts (bench/BENCH_headline.json, bench/BENCH_fig11.json, bench/BENCH_attrib.json)"
# Refresh the committed artifacts: the parallel wall time plus a sequential
# rerun, so each records the fan-out speedup on this machine. Every
# experiment appends its wall time to bench/history.jsonl.
mkdir -p bench
"$BENCHDIR/etsn-bench" -experiment headline -duration 1s \
    -compare-sequential -bench-dir bench -history bench/history.jsonl >/dev/null
"$BENCHDIR/etsn-bench" -experiment fig11 -duration 1s \
    -compare-sequential -bench-dir bench -history bench/history.jsonl >/dev/null
"$BENCHDIR/etsn-bench" -experiment attrib -duration 1s \
    -bench-dir bench -history bench/history.jsonl >/dev/null
# The solver micro-benchmark: CDCL must beat the reference oracle on every
# committed instance class, and its wall times accumulate in the history.
"$BENCHDIR/etsn-bench" -experiment smt \
    -bench-dir bench -history bench/history.jsonl >/dev/null
# The scale run sweeps the sharded engine over 1/2/4/8 shards on the same
# scenario (BENCH_psim.json, gated on byte-identical results) and then the
# decomposition corpus over the tree/mesh cell grid (the scale section of
# BENCH_scale.json, gated on the decomposed wall beating the monolithic
# wall at the largest >=2k-stream point and on plan identity throughout).
"$BENCHDIR/etsn-bench" -experiment scale -duration 1s \
    -bench-dir bench -history bench/history.jsonl >/dev/null
# The backends run races every scheduler backend over the fig11 load grid
# and emits BENCH_backends.json, gated on verifier-clean plans and on the
# race tracking the fastest feasible backend.
"$BENCHDIR/etsn-bench" -experiment backends \
    -bench-dir bench -history bench/history.jsonl >/dev/null
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_headline.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_fig11.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_attrib.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_smt.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_psim.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_backends.json
"$BENCHDIR/etsn-bench" -check-bench bench/BENCH_scale.json

echo "==> wall-time trend (bench/history.jsonl)"
# Informational: flags >10% regressions against each experiment's rolling
# median but does not fail the gate (machine load varies across runs).
"$BENCHDIR/etsn-bench" -trend bench/history.jsonl

echo "==> dashboard gate (etsn-sim -dash: API schema, SIGTERM drain)"
# dashgate starts etsn-sim with a live dashboard on an ephemeral port,
# validates /api/metrics and /api/trend against their JSON schemas, checks
# the embedded page, then SIGTERMs and requires a clean exit.
go build -o "$BENCHDIR/dashgate" ./scripts/dashgate
"$BENCHDIR/dashgate" -bin "$BENCHDIR/etsn-sim" \
    -config scripts/testdata/trace-config.json -history bench/history.jsonl

echo "==> daemon gate (etsn-cncd: admission, overload, crash recovery)"
go build -o "$BENCHDIR/etsn-cncd" ./cmd/etsn-cncd
go build -o "$BENCHDIR/daemongate" ./scripts/daemongate
"$BENCHDIR/daemongate" -bin "$BENCHDIR/etsn-cncd" \
    -config scripts/testdata/trace-config.json -data "$BENCHDIR/cncd-data"

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test ./internal/qcc/ -run=^$ -fuzz=FuzzParse$ -fuzztime="$FUZZTIME"
go test ./internal/qcc/ -run=^$ -fuzz=FuzzParseDeployment -fuzztime="$FUZZTIME"
go test ./internal/smt/ -run=^$ -fuzz=FuzzSolve -fuzztime="$FUZZTIME"

echo "==> differential fuzz smoke (CDCL vs reference, ${DIFF_FUZZTIME})"
go test ./internal/smt/ -run=^$ -fuzz=FuzzDifferential -fuzztime="$DIFF_FUZZTIME"

echo "==> differential fuzz smoke (sharded engine vs sequential oracle, ${DIFF_FUZZTIME})"
go test ./internal/psim/ -run=^$ -fuzz=FuzzPsimDifferential -fuzztime="$DIFF_FUZZTIME"

echo "==> daemon decoder fuzz smoke (${DIFF_FUZZTIME})"
go test ./internal/service/ -run=^$ -fuzz=FuzzDecodeSubmit -fuzztime="$DIFF_FUZZTIME"
go test ./internal/service/ -run=^$ -fuzz=FuzzDecodeAdmit -fuzztime="$FUZZTIME"

echo "==> OK"
