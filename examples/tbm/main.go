// TBM models the paper's motivating scenario (Sec. I): a Tunnel Boring
// Machine whose operator cabin is connected to the machine over a TSN
// network. Periodic telemetry (cutterhead torque, hydraulic pressures,
// conveyor status) flows as time-triggered critical traffic, while the
// operator's emergency-stop command and the cutterhead-hazard alarm are
// event-triggered critical traffic that must reach the PLC within a hard
// deadline no matter when they fire.
//
// The example plans the network twice — with E-TSN and with the AVB
// fallback — and compares how reliably the emergency stop meets its 5 ms
// deadline.
//
// Run with: go run ./examples/tbm
package main

import (
	"fmt"
	"os"
	"time"

	"etsn/internal/core"
	"etsn/internal/model"
	"etsn/internal/sched"
	"etsn/internal/stats"
)

const deadline = 5 * time.Millisecond

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbm:", err)
		os.Exit(1)
	}
}

func run() error {
	network, err := buildTBMNetwork()
	if err != nil {
		return err
	}
	tct, ects, err := buildTraffic(network)
	if err != nil {
		return err
	}
	// Emergency interevent times are long (events are rare), so dense
	// possibility points keep the pick-up delay small: 100 ms / 256 ~ 390 us.
	prob := sched.Problem{Network: network, TCT: tct, ECT: ects, NProb: 256, Spread: true}

	fmt.Println("TBM control network: operator cabin <-> machine backbone <-> PLC")
	fmt.Printf("telemetry: %d periodic streams; emergency traffic: %d event streams, deadline %v\n\n",
		len(tct), len(ects), deadline)

	for _, method := range []sched.Method{sched.MethodETSN, sched.MethodAVB} {
		plan, err := sched.Build(method, prob, 1)
		if err != nil {
			return fmt.Errorf("%v planning: %w", method, err)
		}
		if method == sched.MethodETSN {
			for _, e := range ects {
				bound, err := core.ECTWorstCaseBound(network, plan.Result, e.ID)
				if err != nil {
					return err
				}
				status := "GUARANTEED"
				if bound > e.E2E {
					status = "NOT guaranteed"
				}
				fmt.Printf("  %-18s analytic worst case %-10v deadline %-8v -> %s\n",
					e.ID, bound.Round(time.Microsecond), e.E2E, status)
			}
			fmt.Println()
		}
		results, err := plan.Simulate(network, ects, nil, 10*time.Second, 42)
		if err != nil {
			return fmt.Errorf("%v simulation: %w", method, err)
		}
		fmt.Printf("%s:\n", method)
		for _, e := range ects {
			lats := results.Latencies(e.ID)
			s := stats.Summarize(lats)
			missed := 0
			for _, l := range lats {
				if l > e.E2E {
					missed++
				}
			}
			fmt.Printf("  %-18s %4d events  avg %-10v worst %-10v jitter %-10v deadline misses: %d\n",
				e.ID, s.Count, s.Mean.Round(time.Microsecond), s.Max.Round(time.Microsecond),
				s.StdDev.Round(time.Microsecond), missed)
		}
		fmt.Println()
	}
	fmt.Println("With E-TSN the emergency traffic rides inside the telemetry's shared")
	fmt.Println("time-slots at higher priority, so its worst case is bounded by design;")
	fmt.Println("AVB delivers it only through whatever gate time the telemetry leaves open.")
	return nil
}

// buildTBMNetwork wires the operator cabin and machine segments: the cabin
// switch carries the operator panel and HMI; the machine switch carries the
// PLC and sensor concentrators.
func buildTBMNetwork() (*model.Network, error) {
	n := model.NewNetwork()
	devices := []model.NodeID{"panel", "hmi", "plc", "sensors-front", "sensors-rear", "drives"}
	for _, d := range devices {
		if err := n.AddDevice(d); err != nil {
			return nil, err
		}
	}
	for _, sw := range []model.NodeID{"sw-cabin", "sw-machine"} {
		if err := n.AddSwitch(sw); err != nil {
			return nil, err
		}
	}
	cfg := model.LinkConfig{Bandwidth: 100_000_000, PropDelay: 200 * time.Nanosecond}
	for _, pair := range [][2]model.NodeID{
		{"panel", "sw-cabin"}, {"hmi", "sw-cabin"},
		{"sw-cabin", "sw-machine"},
		{"plc", "sw-machine"}, {"sensors-front", "sw-machine"},
		{"sensors-rear", "sw-machine"}, {"drives", "sw-machine"},
	} {
		if err := n.AddLink(pair[0], pair[1], cfg); err != nil {
			return nil, err
		}
	}
	return n, n.Validate()
}

// buildTraffic defines the telemetry TCT streams and the two emergency ECT
// streams.
func buildTraffic(n *model.Network) ([]*model.Stream, []*model.ECT, error) {
	route := func(a, b model.NodeID) []model.LinkID {
		p, err := n.ShortestPath(a, b)
		if err != nil {
			panic(err) // endpoints are static in this example
		}
		return p
	}
	tct := []*model.Stream{
		// Cutterhead torque and pressure telemetry to the HMI.
		{ID: "torque", Path: route("sensors-front", "hmi"), E2E: 8 * time.Millisecond,
			LengthBytes: 3 * model.MTUBytes, Period: 4 * time.Millisecond,
			Type: model.StreamDet, Share: true},
		{ID: "hydraulics", Path: route("sensors-rear", "hmi"), E2E: 16 * time.Millisecond,
			LengthBytes: 4 * model.MTUBytes, Period: 8 * time.Millisecond,
			Type: model.StreamDet, Share: true},
		// Drive setpoints from the PLC.
		{ID: "setpoints", Path: route("plc", "drives"), E2E: 4 * time.Millisecond,
			LengthBytes: model.MTUBytes, Period: 2 * time.Millisecond,
			Type: model.StreamDet, Share: true},
		// Conveyor status to the HMI.
		{ID: "conveyor", Path: route("sensors-rear", "hmi"), E2E: 32 * time.Millisecond,
			LengthBytes: 2 * model.MTUBytes, Period: 16 * time.Millisecond,
			Type: model.StreamDet, Share: true},
		// Operator command traffic in the cabin -> machine direction: the
		// emergency stop shares these streams' slots along its own path.
		{ID: "hmi-commands", Path: route("hmi", "plc"), E2E: 8 * time.Millisecond,
			LengthBytes: 2 * model.MTUBytes, Period: 4 * time.Millisecond,
			Type: model.StreamDet, Share: true},
		{ID: "panel-heartbeat", Path: route("panel", "plc"), E2E: 16 * time.Millisecond,
			LengthBytes: model.MTUBytes, Period: 8 * time.Millisecond,
			Type: model.StreamDet, Share: true},
	}
	for _, s := range tct {
		if err := s.Validate(n); err != nil {
			return nil, nil, err
		}
	}
	ects := []*model.ECT{
		// The operator's emergency stop: panel -> PLC, 3 hops.
		{ID: "emergency-stop", Path: route("panel", "plc"), E2E: deadline,
			LengthBytes: 256, MinInterevent: 100 * time.Millisecond},
		// Cutterhead hazard alarm: front sensors -> HMI in the cabin.
		{ID: "cutterhead-alarm", Path: route("sensors-front", "hmi"), E2E: deadline,
			LengthBytes: 512, MinInterevent: 50 * time.Millisecond},
	}
	for _, e := range ects {
		if err := e.Validate(n); err != nil {
			return nil, nil, err
		}
	}
	return tct, ects, nil
}
