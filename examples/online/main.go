// Online demonstrates the dynamic-operations extensions: a plant network is
// deployed, then reconfigured at runtime without touching the slots already
// programmed into the switches.
//
//  1. AutoShare — the operator does not annotate which periodic streams
//     lend their slots; the scheduler flips the minimum set needed to make
//     the emergency stream's deadline feasible (the paper's "share as a
//     variable" mode, Sec. IV-B3).
//  2. Admit — months later a new hazard sensor joins. Its event stream is
//     admitted online: every deployed slot stays fixed, the switches only
//     receive GCL additions (the paper's Sec. VII-C future-work direction).
//
// Run with: go run ./examples/online
package main

import (
	"fmt"
	"os"
	"time"

	"etsn/internal/core"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "online:", err)
		os.Exit(1)
	}
}

func run() error {
	network, problem, err := buildPlant()
	if err != nil {
		return err
	}

	// Phase 1: initial planning with automatic share selection.
	fmt.Println("phase 1: initial deployment (share flags decided by the scheduler)")
	res, flipped, err := core.AutoShare(problem)
	if err != nil {
		return fmt.Errorf("auto-share: %w", err)
	}
	if len(flipped) == 0 {
		fmt.Println("  no sharing needed: the event stream fits the residual capacity")
	} else {
		fmt.Printf("  scheduler flipped %v to slot-sharing to fit the emergency stream\n", flipped)
	}
	// AutoShare works on a copy; carry its decisions forward for admission.
	for _, s := range problem.TCT {
		for _, id := range flipped {
			if s.ID == id {
				s.Share = true
				s.Priority = 0
			}
		}
	}
	guarantee, err := core.ECTScheduleWorstCase(network, res, "estop")
	if err != nil {
		return err
	}
	bound, err := core.ECTWorstCaseBound(network, res, "estop")
	if err != nil {
		return err
	}
	fmt.Printf("  deployed: %d slots; estop guaranteed %v by schedule (runtime bound %v)\n\n",
		res.Schedule.NumSlots(), guarantee.Round(time.Microsecond), bound.Round(time.Microsecond))

	// Phase 2: online admission of a new hazard stream.
	fmt.Println("phase 2: a hazard sensor joins at runtime")
	path, err := network.ShortestPath("press", "scada")
	if err != nil {
		return err
	}
	hazard := &model.ECT{
		ID:            "hazard",
		Path:          path,
		E2E:           8 * time.Millisecond,
		LengthBytes:   512,
		MinInterevent: 40 * time.Millisecond,
	}
	next, err := core.Admit(problem, res, nil, []*model.ECT{hazard})
	if err != nil {
		return fmt.Errorf("admission: %w", err)
	}
	if !core.SlotsUnchanged(res.Schedule, next.Schedule) {
		return fmt.Errorf("admission moved deployed slots")
	}
	added := next.Schedule.NumSlots() - res.Schedule.NumSlots()
	fmt.Printf("  admitted online: %d new slots, zero deployed slots moved\n", added)
	hazardGuarantee, err := core.ECTScheduleWorstCase(network, next, "hazard")
	if err != nil {
		return err
	}
	fmt.Printf("  hazard guaranteed %v against its %v deadline\n\n",
		hazardGuarantee.Round(time.Microsecond), hazard.E2E)

	// Phase 3: run the reconfigured network.
	fmt.Println("phase 3: live run with both event streams")
	gcls, err := gcl.Synthesize(next.Schedule, gcl.Config{OpenECTOnShared: true})
	if err != nil {
		return err
	}
	simulator, err := sim.New(sim.Config{
		Network:  network,
		Schedule: next.Schedule,
		GCLs:     gcls,
		ECT: []sim.ECTTraffic{
			{Stream: problem.ECT[0], Priority: model.PriorityECT},
			{Stream: hazard, Priority: model.PriorityECT},
		},
		Duration: 10 * time.Second,
		Seed:     17,
	})
	if err != nil {
		return err
	}
	results, err := simulator.Run()
	if err != nil {
		return err
	}
	for _, id := range []model.StreamID{"estop", "hazard"} {
		s := stats.Summarize(results.Latencies(id))
		fmt.Printf("  %-8s %4d events, avg %v, worst %v\n",
			id, s.Count, s.Mean.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	fmt.Println("\nthe running plant never paused: slot sharing was negotiated by the")
	fmt.Println("scheduler, and the new stream slotted into residual capacity online.")
	return nil
}

// buildPlant wires a press line: PLC and SCADA on one switch, press and
// sensors on the other.
func buildPlant() (*model.Network, *core.Problem, error) {
	n := model.NewNetwork()
	for _, d := range []model.NodeID{"plc", "scada", "press", "sensors", "estop-panel"} {
		if err := n.AddDevice(d); err != nil {
			return nil, nil, err
		}
	}
	for _, sw := range []model.NodeID{"sw1", "sw2"} {
		if err := n.AddSwitch(sw); err != nil {
			return nil, nil, err
		}
	}
	cfg := model.LinkConfig{Bandwidth: 100_000_000}
	for _, pair := range [][2]model.NodeID{
		{"plc", "sw1"}, {"scada", "sw1"}, {"estop-panel", "sw1"},
		{"sw1", "sw2"}, {"press", "sw2"}, {"sensors", "sw2"},
	} {
		if err := n.AddLink(pair[0], pair[1], cfg); err != nil {
			return nil, nil, err
		}
	}
	route := func(a, b model.NodeID) []model.LinkID {
		p, err := n.ShortestPath(a, b)
		if err != nil {
			panic(err)
		}
		return p
	}
	problem := &core.Problem{
		Network: n,
		TCT: []*model.Stream{
			// The plc->press direction is heavily loaded: the estop shares
			// these links, so without slot sharing its possibilities have
			// almost nowhere to go.
			{ID: "press-ctl", Path: route("plc", "press"), E2E: 4 * time.Millisecond,
				LengthBytes: 6 * model.MTUBytes, Period: 2 * time.Millisecond, Type: model.StreamDet},
			{ID: "recipe", Path: route("scada", "press"), E2E: 16 * time.Millisecond,
				LengthBytes: 12 * model.MTUBytes, Period: 8 * time.Millisecond, Type: model.StreamDet},
			{ID: "sync", Path: route("plc", "sensors"), E2E: 8 * time.Millisecond,
				LengthBytes: 8 * model.MTUBytes, Period: 4 * time.Millisecond, Type: model.StreamDet},
			{ID: "telemetry", Path: route("sensors", "scada"), E2E: 16 * time.Millisecond,
				LengthBytes: 6 * model.MTUBytes, Period: 8 * time.Millisecond, Type: model.StreamDet},
		},
		ECT: []*model.ECT{
			{ID: "estop", Path: route("estop-panel", "press"), E2E: 4 * time.Millisecond,
				LengthBytes: model.MTUBytes, MinInterevent: 50 * time.Millisecond},
		},
		Opts: core.Options{NProb: 128, SharedReserves: true, SpreadFrames: true},
	}
	return n, problem, nil
}
