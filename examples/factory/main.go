// Factory models the paper's multi-ECT scenario (Sec. VI-C3): a production
// cell with four switches in a line and twelve stations. Forty periodic
// streams (IEC/IEEE 60802-style) carry sensor and control data at 50%
// network load, and four event-triggered streams — stop commands, tool
// breakage alarms, light-curtain trips, and a quality-reject trigger — fire
// at random times from random stations.
//
// The example plans E-TSN, PERIOD, and AVB and prints the Fig. 16-style
// comparison: latency and jitter of every event stream under each method.
//
// Run with: go run ./examples/factory
package main

import (
	"fmt"
	"os"
	"time"

	"etsn/internal/core"
	"etsn/internal/experiments"
	"etsn/internal/model"
	"etsn/internal/sched"
	"etsn/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "factory:", err)
		os.Exit(1)
	}
}

func run() error {
	// The 4-switch / 12-device cell at 50% periodic load.
	scen, err := experiments.NewSimulationScenario(0.50, 1, 1, 2026)
	if err != nil {
		return err
	}
	// Name the cell's event streams: the first ECT (D1 -> D12) is the
	// cell-wide stop command; add three more with random endpoints.
	scen.ECT[0].ID = "stop-command"
	if err := scen.AddRandomECTs(3, 2026); err != nil {
		return err
	}
	names := map[model.StreamID]model.StreamID{
		"ect2": "tool-breakage",
		"ect3": "light-curtain",
		"ect4": "quality-reject",
	}
	for _, e := range scen.ECT {
		if newID, ok := names[e.ID]; ok {
			e.ID = newID
		}
	}
	scen.NProb = experiments.MultiECTNProb

	fmt.Printf("factory cell: %d stations, 4 switches, %d periodic streams at %.0f%% load\n",
		12, len(scen.TCT), scen.Load*100)
	fmt.Printf("event streams: ")
	for i, e := range scen.ECT {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (%s->%s)", e.ID, e.Source(), e.Destination())
	}
	fmt.Println()
	fmt.Println()

	const duration = 10 * time.Second
	for _, method := range []sched.Method{sched.MethodETSN, sched.MethodPERIOD, sched.MethodAVB} {
		plan, err := sched.Build(method, scen.Problem(), 1)
		if err != nil {
			return fmt.Errorf("%v planning: %w", method, err)
		}
		results, err := plan.Simulate(scen.Network, scen.ECT, scen.BE, duration, 7)
		if err != nil {
			return fmt.Errorf("%v simulation: %w", method, err)
		}
		fmt.Printf("%s:\n", method)
		for _, e := range scen.ECT {
			s := stats.Summarize(results.Latencies(e.ID))
			line := fmt.Sprintf("  %-16s %4d events  avg %-10v worst %-10v jitter %v",
				e.ID, s.Count, s.Mean.Round(time.Microsecond),
				s.Max.Round(time.Microsecond), s.StdDev.Round(time.Microsecond))
			if method == sched.MethodETSN {
				if bound, err := core.ECTWorstCaseBound(scen.Network, plan.Result, e.ID); err == nil {
					line += fmt.Sprintf("  (bound %v)", bound.Round(time.Microsecond))
				}
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	fmt.Println("E-TSN keeps every event stream's worst case bounded while the cell's")
	fmt.Println("periodic control loops keep their deadlines; PERIOD trades bandwidth for")
	fmt.Println("latency and AVB's tail depends entirely on what the schedule leaves open.")
	return nil
}
