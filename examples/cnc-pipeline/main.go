// CNC-pipeline walks the full 802.1Qcc configuration flow the paper's
// Fig. 5 describes: stream requirements arrive as a JSON document (the CUC's
// output), the CNC computes a verified E-TSN schedule, compiles per-port
// Gate Control Lists, "distributes" them to the simulated switches, and the
// network runs live traffic against the deployed configuration.
//
// Run with: go run ./examples/cnc-pipeline
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"etsn/internal/core"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/qcc"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

// requirements is the CUC's output: a production line with two switches,
// four devices, three periodic streams, and one event-triggered stream.
const requirements = `{
  "network": {
    "devices": ["camera", "controller", "robot", "estop"],
    "switches": ["sw-a", "sw-b"],
    "links": [
      {"a": "camera",     "b": "sw-a", "bandwidth_bps": 100000000},
      {"a": "estop",      "b": "sw-a", "bandwidth_bps": 100000000},
      {"a": "sw-a",       "b": "sw-b", "bandwidth_bps": 100000000},
      {"a": "controller", "b": "sw-b", "bandwidth_bps": 100000000},
      {"a": "robot",      "b": "sw-b", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "vision",   "talker": "camera",     "listener": "controller", "type": "time-triggered",
     "period_us": 4000,  "max_latency_us": 8000,  "payload_bytes": 9000, "share": true},
    {"id": "setpoint", "talker": "controller", "listener": "robot",      "type": "time-triggered",
     "period_us": 2000,  "max_latency_us": 4000,  "payload_bytes": 1500, "share": true},
    {"id": "feedback", "talker": "robot",      "listener": "controller", "type": "time-triggered",
     "period_us": 2000,  "max_latency_us": 4000,  "payload_bytes": 1500, "share": true},
    {"id": "halt",     "talker": "estop",      "listener": "robot",      "type": "event-triggered",
     "period_us": 50000, "max_latency_us": 5000,  "payload_bytes": 256}
  ],
  "options": {"n_prob": 128, "spread": true, "shared_reserves": true}
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cnc-pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// Step 1 (CUC): parse the stream requirements.
	cfg, err := qcc.Load(strings.NewReader(requirements))
	if err != nil {
		return err
	}
	fmt.Printf("CUC: %d stream requirements over %d devices and %d switches\n",
		len(cfg.Streams), len(cfg.Network.Devices), len(cfg.Network.Switches))

	// Step 2 (CNC): schedule, verify, and compile GCLs.
	dep, err := qcc.Compute(cfg)
	if err != nil {
		return err
	}
	st := gcl.Summarize(dep.GCLs)
	fmt.Printf("CNC: schedule with %d slots over hyperperiod %v (backend %s)\n",
		dep.Result.Schedule.NumSlots(), dep.Result.Schedule.Hyperperiod, dep.Result.BackendUsed)
	fmt.Printf("CNC: %d port GCLs, %d entries total\n", st.Ports, st.Entries)
	for _, e := range dep.Problem.ECT {
		bound, err := core.ECTWorstCaseBound(dep.Network, dep.Result, e.ID)
		if err != nil {
			return err
		}
		fmt.Printf("CNC: ECT %q worst-case bound %v against deadline %v\n",
			e.ID, bound.Round(time.Microsecond), e.E2E)
	}

	// Step 3 (distribution): hand the GCLs to the switches — here, the
	// simulator consumes exactly the artifacts a switch would.
	fmt.Println("\ndistributing GCLs to switches and starting the network...")
	simulator, err := sim.New(sim.Config{
		Network:  dep.Network,
		Schedule: dep.Result.Schedule,
		GCLs:     dep.GCLs,
		ECT: []sim.ECTTraffic{{
			Stream:   dep.Problem.ECT[0],
			Priority: model.PriorityECT,
		}},
		Duration: 10 * time.Second,
		Seed:     3,
	})
	if err != nil {
		return err
	}
	results, err := simulator.Run()
	if err != nil {
		return err
	}

	// Step 4: report live behaviour against the contracted requirements.
	fmt.Println("\nlive network statistics:")
	for _, req := range cfg.Streams {
		lats := results.Latencies(model.StreamID(req.ID))
		s := stats.Summarize(lats)
		deadline := time.Duration(req.MaxLatencyUs) * time.Microsecond
		missed := 0
		for _, l := range lats {
			if l > deadline {
				missed++
			}
		}
		fmt.Printf("  %-10s %-16s %6d msgs  avg %-10v worst %-10v deadline %-8v misses %d\n",
			req.ID, req.Type, s.Count, s.Mean.Round(time.Microsecond),
			s.Max.Round(time.Microsecond), deadline, missed)
	}
	if drops := results.TotalDrops(); drops != 0 {
		return fmt.Errorf("unexpected frame drops: %d", drops)
	}
	fmt.Println("\nall contracted deadlines held; the emergency halt is deterministic even")
	fmt.Println("though its firing time is not.")
	return nil
}
