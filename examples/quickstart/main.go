// Quickstart: schedule the paper's running example (Fig. 2/Fig. 6) and
// inspect the result.
//
// Three devices hang off one switch. A time-triggered stream s1 carries
// three frames per 620 us cycle from D1 to D3 and offers its time-slots to
// event-triggered traffic. An event-triggered stream s2 (one frame, minimum
// interevent 620 us) runs from D2 to D3. E-TSN expands s2 into five
// probabilistic streams, reserves prudent extras for s1, solves the joint
// schedule, compiles Gate Control Lists, and reports the worst-case
// latencies; a short simulation confirms them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"etsn/internal/core"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The network of paper Fig. 2: D1, D2, D3 around SW1, 100 Mb/s.
	network := model.NewNetwork()
	for _, d := range []model.NodeID{"D1", "D2", "D3"} {
		if err := network.AddDevice(d); err != nil {
			return err
		}
	}
	if err := network.AddSwitch("SW1"); err != nil {
		return err
	}
	for _, d := range []model.NodeID{"D1", "D2", "D3"} {
		if err := network.AddLink(d, "SW1", model.LinkConfig{Bandwidth: 100_000_000}); err != nil {
			return err
		}
	}

	// 2. Streams: the cycle is 5T where T is one MTU transmission (124 us).
	const mtuTx = 124 * time.Microsecond
	cycle := 5 * mtuTx
	pathS1, err := network.ShortestPath("D1", "D3")
	if err != nil {
		return err
	}
	pathS2, err := network.ShortestPath("D2", "D3")
	if err != nil {
		return err
	}
	tct := &model.Stream{
		ID:          "s1",
		Path:        pathS1,
		E2E:         6 * mtuTx,
		LengthBytes: 3 * model.MTUBytes, // three frames per cycle
		Period:      cycle,
		Type:        model.StreamDet,
		Share:       true, // offer the slots to event-triggered traffic
	}
	ect := &model.ECT{
		ID:            "s2",
		Path:          pathS2,
		E2E:           cycle,
		LengthBytes:   model.MTUBytes,
		MinInterevent: cycle,
	}

	// 3. Solve the joint schedule (five possibilities, like paper Fig. 6).
	res, err := core.Schedule(&core.Problem{
		Network: network,
		TCT:     []*model.Stream{tct},
		ECT:     []*model.ECT{ect},
		Opts:    core.Options{NProb: 5},
	})
	if err != nil {
		return fmt.Errorf("scheduling: %w", err)
	}
	if vs := core.Verify(network, res); len(vs) != 0 {
		return fmt.Errorf("schedule failed verification: %v", vs[0])
	}
	fmt.Printf("schedule: %s (backend %s)\n", res.Schedule, res.BackendUsed)

	fmt.Println("\nper-link slots:")
	for _, lid := range res.Schedule.Links() {
		fmt.Printf("  %s:\n", lid)
		for _, fs := range res.Schedule.SlotsOn(lid) {
			kind := "TCT"
			if fs.Prob {
				kind = "possibility"
			}
			fmt.Printf("    [%4d..%4d)us  %-12s %s frame %d\n",
				fs.Offset, fs.End(), kind, fs.Stream, fs.Index)
		}
	}

	// 4. Analytic worst cases.
	wcTCT, err := core.TCTWorstCase(network, res, "s1")
	if err != nil {
		return err
	}
	wcECT, err := core.ECTWorstCaseBound(network, res, "s2")
	if err != nil {
		return err
	}
	fmt.Printf("\nworst-case latency: s1 (TCT) %v <= deadline %v\n", wcTCT, tct.E2E)
	fmt.Printf("worst-case latency: s2 (ECT) %v <= deadline %v, whenever the event fires\n", wcECT, ect.E2E)

	// 5. Compile 802.1Qbv Gate Control Lists with prioritized slot sharing.
	gcls, err := gcl.Synthesize(res.Schedule, gcl.Config{OpenECTOnShared: true})
	if err != nil {
		return fmt.Errorf("GCL synthesis: %w", err)
	}
	st := gcl.Summarize(gcls)
	fmt.Printf("\nGCLs: %d ports, %d entries total (max %d per port)\n",
		st.Ports, st.Entries, st.MaxEntriesPerPort)

	// 6. Simulate two seconds of operation with stochastic events.
	simulator, err := sim.New(sim.Config{
		Network:   network,
		Schedule:  res.Schedule,
		GCLs:      gcls,
		ECT:       []sim.ECTTraffic{{Stream: ect, Priority: model.PriorityECT}},
		Duration:  2 * time.Second,
		Seed:      1,
		TraceHops: true,
	})
	if err != nil {
		return err
	}
	results, err := simulator.Run()
	if err != nil {
		return err
	}
	sumECT := stats.Summarize(results.Latencies("s2"))
	sumTCT := stats.Summarize(results.Latencies("s1"))
	fmt.Printf("\nsimulated %d events: ECT latency avg %v, worst %v, jitter %v (bound %v)\n",
		sumECT.Count, sumECT.Mean, sumECT.Max, sumECT.StdDev, wcECT)
	fmt.Printf("simulated %d cycles: TCT latency avg %v, worst %v (deadline %v)\n",
		sumTCT.Count, sumTCT.Mean, sumTCT.Max, tct.E2E)

	// 7. Where does the ECT latency come from? Per-hop breakdown and the
	// full distribution.
	fmt.Println("\nECT latency by hop (time from event until the frame clears each link):")
	for hop, lid := range ect.Path {
		s := stats.Summarize(results.HopLatencies("s2", hop))
		fmt.Printf("  hop %d (%s): avg %v, worst %v\n", hop+1, lid, s.Mean, s.Max)
	}
	fmt.Println("\nECT latency distribution:")
	stats.NewHistogram(results.Latencies("s2"), 8).WriteText(os.Stdout)
	return nil
}
