# Tier-1 gate: `make check` must pass before merge (see README).
.PHONY: check test build vet fuzz

check:
	./scripts/check.sh

test:
	go test ./...

build:
	go build ./...

vet:
	go vet ./...

fuzz:
	FUZZTIME=$${FUZZTIME:-30s} ./scripts/check.sh
