# Tier-1 gate: `make check` must pass before merge (see README).
.PHONY: check test build vet fuzz bench-smt

check:
	./scripts/check.sh

# Refresh and gate the solver micro-benchmark artifact (bench/BENCH_smt.json):
# CDCL must beat the reference oracle on every instance class.
bench-smt:
	go run ./cmd/etsn-bench -experiment smt -bench-dir bench -history bench/history.jsonl
	go run ./cmd/etsn-bench -check-bench bench/BENCH_smt.json

test:
	go test ./...

build:
	go build ./...

vet:
	go vet ./...

fuzz:
	FUZZTIME=$${FUZZTIME:-30s} ./scripts/check.sh
