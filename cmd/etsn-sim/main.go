// etsn-sim plans a scenario with one of the three methods the paper
// compares (E-TSN, PERIOD, AVB) and simulates it against stochastic
// event-triggered traffic, printing per-stream latency statistics.
//
// Usage:
//
//	etsn-sim -config network.json [-method etsn|period|avb] [-duration 4s]
//	         [-seed 1] [-multiplier 1] [-parallel N] [-json]
//	         [-backend auto|placer|greedy|tabu|anneal|smt|smt-incremental|race]
//	         [-engine seq|shard] [-shards N]
//	         [-fail-link SW1->SW2 -fail-at 1s -heal-after 500ms]
//	         [-metrics out.prom] [-trace-phases out.trace.json]
//	         [-pprof cpu=FILE|mem=FILE|HOST:PORT]
//	         [-attrib] [-trace-hops] [-trace FILE] [-trace-lanes FILE]
//	         [-dash HOST:PORT [-dash-history bench/history.jsonl]]
//
// -engine shard runs the simulation on the conservative-parallel sharded
// engine (internal/psim) with -shards workers (default GOMAXPROCS); its
// results are byte-identical to the sequential engine in deterministic
// mode, so tables and traces do not depend on the engine choice.
//
// -parallel N runs a portfolio of N diversified SMT replicas during
// planning when the monolithic solver is selected (<= 1 keeps the single
// deterministic search).
//
// -backend selects the E-TSN scheduling backend (heuristic placers and
// searches, the exact SMT solvers, or "race" — all of them concurrently,
// first verified plan in priority order wins), overriding the
// configuration's options.backend. It only affects -method etsn.
//
// -dash serves the live observability dashboard (internal/dash) on the
// given address: the embedded page at /, JSON snapshots at /api/metrics,
// an SSE stream at /api/metrics/stream, and — with -dash-history — the
// wall-time trend at /api/trend. The process prints the bound address to
// stderr, runs the simulation, then keeps serving until SIGINT/SIGTERM,
// at which point it drains gracefully and exits 0.
//
// -attrib enables the per-frame causal latency decomposition: each row
// gains its analytic bound, worst slack, miss count, and dominant latency
// phase, the -trace JSONL stream gains "attrib" and "slack" records
// (analyze with etsn-trace), and -trace-lanes renders the attributed
// frames as a Chrome trace_event lane file (one track per link).
// -trace-hops records per-hop completion latencies in the results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"etsn/internal/core"
	"etsn/internal/dash"
	"etsn/internal/model"
	"etsn/internal/obs"
	"etsn/internal/qcc"
	"etsn/internal/sched"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("etsn-sim", flag.ContinueOnError)
	configPath := fs.String("config", "", "path to the Qcc-style JSON configuration (required)")
	methodName := fs.String("method", "etsn", "scheduling method: etsn, period, avb, or cqf")
	duration := fs.Duration("duration", 4*time.Second, "simulated time span")
	seed := fs.Int64("seed", 1, "random seed for event arrivals")
	multiplier := fs.Int("multiplier", 1, "PERIOD slot-budget multiplier")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	tracePath := fs.String("trace", "", "write a JSONL frame-event trace to this file")
	failLink := fs.String("fail-link", "", "inject a link failure on this link (\"from->to\", both directions)")
	failAt := fs.Duration("fail-at", time.Second, "instant the injected link failure occurs")
	healAfter := fs.Duration("heal-after", 0, "bring the failed link back up after this long (0 = stays down)")
	metrics := fs.String("metrics", "", "write planner+simulator metrics to this file (.json for JSON, else Prometheus text)")
	tracePhases := fs.String("trace-phases", "", "write a Chrome trace_event JSON file of planner/simulation phases")
	pprofSpec := fs.String("pprof", "", "profiling: cpu=FILE, mem=FILE, or HOST:PORT for a live pprof server")
	parallel := fs.Int("parallel", 0, "diversified SMT portfolio width during planning (<= 1 keeps the single search)")
	backend := fs.String("backend", "", "E-TSN scheduling backend (overrides the config): auto, placer, greedy, tabu, anneal, smt, smt-incremental, or race")
	decompose := fs.Bool("decompose", false, "split the E-TSN solve into conflict-graph components solved independently and merged (overrides the config)")
	engine := fs.String("engine", sched.EngineSeq, "simulation engine: seq (sequential oracle) or shard (conservative-parallel)")
	shards := fs.Int("shards", 0, "shard count for -engine shard (0 = GOMAXPROCS)")
	attrib := fs.Bool("attrib", false, "attribute each frame's latency to queue/gate/preempt/tx/prop phases and score bound conformance")
	traceHops := fs.Bool("trace-hops", false, "record per-hop completion latencies in the results")
	traceLanes := fs.String("trace-lanes", "", "write attributed frames as a Chrome trace_event lane file (requires -attrib)")
	dashAddr := fs.String("dash", "", "serve the live dashboard on this address (e.g. :8080; keeps serving after the run until SIGINT/SIGTERM)")
	dashHistory := fs.String("dash-history", "", "history.jsonl file backing the dashboard's /api/trend (requires -dash)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -config")
	}
	if *pprofSpec != "" {
		stop, err := obs.StartPprof(*pprofSpec)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	var reg *obs.Registry
	var phases *obs.Tracer
	if *metrics != "" || *dashAddr != "" {
		reg = obs.NewRegistry()
	}
	if *tracePhases != "" || *dashAddr != "" {
		phases = obs.NewTracer()
	}
	var dashRunner *dash.Runner
	if *dashAddr != "" {
		srv := dash.NewServer(dash.Options{Registry: reg, Tracer: phases, HistoryPath: *dashHistory})
		var err error
		dashRunner, err = dash.Start(*dashAddr, srv)
		if err != nil {
			return fmt.Errorf("-dash: %w", err)
		}
		defer func() { _ = dashRunner.Shutdown(2 * time.Second) }()
		fmt.Fprintf(os.Stderr, "etsn-sim: dashboard listening on http://%s\n", dashRunner.Addr())
	} else if *dashHistory != "" {
		return fmt.Errorf("-dash-history requires -dash")
	}
	method, err := parseMethod(*methodName)
	if err != nil {
		return err
	}
	f, err := os.Open(*configPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := qcc.Load(f)
	if err != nil {
		return err
	}
	if *backend != "" {
		if _, err := core.ParseBackend(*backend); err != nil {
			return err
		}
		cfg.Options.Backend = *backend
	}
	if *decompose {
		cfg.Options.Decompose = true
	}
	p, err := cfg.BuildProblem()
	if err != nil {
		return err
	}
	prob := sched.Problem{
		Network:   p.Network,
		TCT:       p.TCT,
		ECT:       p.ECT,
		NProb:     p.Opts.NProb,
		Spread:    p.Opts.SpreadFrames,
		Obs:       reg,
		Phases:    phases,
		Portfolio: *parallel,
		Backend:   p.Opts.Backend,
		Timeout:   p.Opts.Timeout,
		Decompose: p.Opts.Decompose,
	}
	plan, err := sched.Build(method, prob, *multiplier)
	if err != nil {
		return err
	}
	if *traceLanes != "" && !*attrib {
		return fmt.Errorf("-trace-lanes requires -attrib")
	}
	simOpts := sched.SimOptions{ECT: p.ECT, Duration: *duration, Seed: *seed, Obs: reg,
		Attribution: *attrib, TraceHops: *traceHops, Engine: *engine, Shards: *shards}
	if *failLink != "" {
		lid, err := model.ParseLinkID(*failLink)
		if err != nil {
			return fmt.Errorf("-fail-link: %w", err)
		}
		simOpts.Faults = append(simOpts.Faults,
			sim.Fault{At: *failAt, Kind: sim.FaultLinkDown, Link: lid})
		if *healAfter > 0 {
			simOpts.Faults = append(simOpts.Faults,
				sim.Fault{At: *failAt + *healAfter, Kind: sim.FaultLinkUp, Link: lid})
		}
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		simOpts.Trace = traceFile
	}
	spSim := phases.Begin("simulate", "method", method.String())
	results, err := plan.SimulateOpts(p.Network, simOpts)
	spSim.End()
	if err != nil {
		return err
	}
	if *metrics != "" {
		if err := reg.WriteMetricsFile(*metrics); err != nil {
			return err
		}
	}
	if *tracePhases != "" {
		if err := phases.WriteChromeTraceFile(*tracePhases); err != nil {
			return err
		}
	}
	if *traceLanes != "" {
		lf, err := os.Create(*traceLanes)
		if err != nil {
			return err
		}
		if err := obs.WriteLaneTrace(lf, results.FrameLanes()); err != nil {
			lf.Close()
			return err
		}
		if err := lf.Close(); err != nil {
			return err
		}
	}
	if dashRunner != nil && *attrib {
		dashRunner.Server.SetLanes(results.FrameLanes)
	}
	// waitDash keeps the dashboard serving after the run's output is
	// printed, until the operator sends SIGINT/SIGTERM; the drain is
	// graceful (SSE clients get a bye frame) and the exit code is 0.
	waitDash := func() error {
		if dashRunner == nil {
			return nil
		}
		fmt.Fprintf(os.Stderr, "etsn-sim: run complete; dashboard serving on http://%s (Ctrl-C to exit)\n", dashRunner.Addr())
		dashRunner.WaitSignal()
		return dashRunner.Shutdown(5 * time.Second)
	}

	type row struct {
		Stream   string  `json:"stream"`
		Kind     string  `json:"kind"`
		Count    int     `json:"count"`
		MeanUs   float64 `json:"mean_us"`
		WorstUs  float64 `json:"worst_us"`
		JitterUs float64 `json:"jitter_us"`
		Drops    int     `json:"drops,omitempty"`
		// Conformance columns, present for streams with an analytic bound.
		BoundUs    float64 `json:"bound_us,omitempty"`
		MinSlackUs float64 `json:"min_slack_us,omitempty"`
		Misses     int     `json:"misses,omitempty"`
		Checked    int     `json:"checked,omitempty"`
		// Dominant is the stream's heaviest latency phase (with -attrib).
		Dominant string `json:"dominant_phase,omitempty"`
	}
	isECT := make(map[model.StreamID]bool, len(p.ECT))
	for _, e := range p.ECT {
		isECT[e.ID] = true
	}
	var rows []row
	for _, id := range results.Streams() {
		s := stats.Summarize(results.Latencies(id))
		kind := "TCT"
		if isECT[id] {
			kind = "ECT"
		}
		r := row{
			Stream:   string(id),
			Kind:     kind,
			Count:    s.Count,
			MeanUs:   us(s.Mean),
			WorstUs:  us(s.Max),
			JitterUs: us(s.StdDev),
			Drops:    results.Drops(id),
		}
		if c, ok := results.Conformance(id); ok {
			r.BoundUs = us(c.Bound)
			r.MinSlackUs = us(c.MinSlack)
			r.Misses = c.Misses
			r.Checked = c.Checked
		}
		if prof, ok := results.Attribution(id); ok {
			r.Dominant = prof.DominantPhase().String()
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind // ECT first
		}
		return rows[i].Stream < rows[j].Stream
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		return waitDash()
	}
	fmt.Printf("method %s, %v simulated, seed %d\n", method, *duration, *seed)
	fmt.Printf("%-14s %-5s %8s %12s %12s %12s %6s %12s %12s %6s %-8s\n",
		"stream", "kind", "msgs", "mean(us)", "worst(us)", "jitter(us)", "drops",
		"bound(us)", "slack(us)", "miss", "phase")
	for _, r := range rows {
		bound, slack, miss := "-", "-", "-"
		if r.Checked > 0 {
			bound = fmt.Sprintf("%.2f", r.BoundUs)
			slack = fmt.Sprintf("%.2f", r.MinSlackUs)
			miss = fmt.Sprintf("%d", r.Misses)
		}
		phase := r.Dominant
		if phase == "" {
			phase = "-"
		}
		fmt.Printf("%-14s %-5s %8d %12.2f %12.2f %12.2f %6d %12s %12s %6s %-8s\n",
			r.Stream, r.Kind, r.Count, r.MeanUs, r.WorstUs, r.JitterUs, r.Drops,
			bound, slack, miss, phase)
	}
	return waitDash()
}

func parseMethod(name string) (sched.Method, error) {
	switch name {
	case "etsn", "e-tsn", "E-TSN":
		return sched.MethodETSN, nil
	case "period", "PERIOD":
		return sched.MethodPERIOD, nil
	case "avb", "AVB":
		return sched.MethodAVB, nil
	case "cqf", "CQF":
		return sched.MethodCQF, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want etsn, period, avb, or cqf)", name)
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
