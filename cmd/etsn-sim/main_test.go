package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etsn/internal/sched"
)

const testConfig = `{
  "network": {
    "devices": ["D1", "D2", "D3"],
    "switches": ["SW1"],
    "links": [
      {"a": "D1", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D2", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D3", "b": "SW1", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "s1", "talker": "D1", "listener": "D3", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 744, "payload_bytes": 4500, "share": true},
    {"id": "s2", "talker": "D2", "listener": "D3", "type": "event-triggered",
     "period_us": 620, "max_latency_us": 620, "payload_bytes": 1500}
  ],
  "options": {"n_prob": 5}
}`

func writeConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMethods(t *testing.T) {
	cfg := writeConfig(t)
	for _, method := range []string{"etsn", "period", "avb", "cqf"} {
		if err := run([]string{"-config", cfg, "-method", method, "-duration", "50ms"}); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	cfg := writeConfig(t)
	if err := run([]string{"-config", cfg, "-duration", "50ms", "-json"}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := writeConfig(t)
	if err := run([]string{"-config", cfg, "-method", "teleport"}); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("bad method: %v", err)
	}
	if err := run([]string{"-method", "etsn"}); err == nil {
		t.Fatal("missing config accepted")
	}
	if err := run([]string{"-config", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]sched.Method{
		"etsn": sched.MethodETSN, "E-TSN": sched.MethodETSN, "e-tsn": sched.MethodETSN,
		"period": sched.MethodPERIOD, "PERIOD": sched.MethodPERIOD,
		"avb": sched.MethodAVB, "AVB": sched.MethodAVB,
		"cqf": sched.MethodCQF, "CQF": sched.MethodCQF,
	}
	for name, want := range cases {
		got, err := parseMethod(name)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMethod("x"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunTrace(t *testing.T) {
	cfg := writeConfig(t)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-config", cfg, "-duration", "20ms", "-trace", trace}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"kind\":\"deliver\"") {
		t.Fatalf("trace missing deliveries:\n%.200s", data)
	}
}

func TestRunAttribOutputs(t *testing.T) {
	cfg := writeConfig(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	lanes := filepath.Join(dir, "lanes.json")
	if err := run([]string{"-config", cfg, "-duration", "50ms",
		"-attrib", "-trace-hops", "-trace", trace, "-trace-lanes", lanes}); err != nil {
		t.Fatalf("run -attrib: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"kind\":\"attrib\"", "\"kind\":\"slack\"", "queue_ns"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("trace missing %s:\n%.200s", want, data)
		}
	}
	ldata, err := os.ReadFile(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ldata), "traceEvents") || !strings.Contains(string(ldata), "\"tx\"") {
		t.Fatalf("lane file incomplete:\n%.200s", ldata)
	}
	// -trace-lanes without -attrib has nothing to render and must say so.
	if err := run([]string{"-config", cfg, "-duration", "20ms", "-trace-lanes", lanes}); err == nil ||
		!strings.Contains(err.Error(), "-attrib") {
		t.Fatalf("lanes without attrib: %v", err)
	}
}

func TestRunMetricsAndPhases(t *testing.T) {
	cfg := writeConfig(t)
	dir := t.TempDir()
	prom := filepath.Join(dir, "out.prom")
	trace := filepath.Join(dir, "phases.trace.json")
	if err := run([]string{"-config", cfg, "-duration", "50ms",
		"-metrics", prom, "-trace-phases", trace}); err != nil {
		t.Fatalf("run -metrics: %v", err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"etsn_sim_events_total", "etsn_sim_delivered_total", "etsn_core_streams_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %s:\n%.400s", want, data)
		}
	}
	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"simulate"`, `"expand"`, `"traceEvents"`} {
		if !strings.Contains(string(tdata), want) {
			t.Errorf("phase trace missing %s", want)
		}
	}
}

func TestRunMetricsJSONFormat(t *testing.T) {
	cfg := writeConfig(t)
	out := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-config", cfg, "-duration", "20ms", "-metrics", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if doc.Counters["etsn_sim_events_total"] == 0 {
		t.Fatal("JSON metrics missing event count")
	}
}

func TestRunDashHistoryRequiresDash(t *testing.T) {
	cfg := writeConfig(t)
	err := run([]string{"-config", cfg, "-duration", "50ms", "-dash-history", "x.jsonl"})
	if err == nil || !strings.Contains(err.Error(), "-dash-history requires -dash") {
		t.Fatalf("want -dash-history guard, got %v", err)
	}
}
