package main

import (
	"strings"
	"testing"
)

func TestRunRequiresDataDir(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "-data") {
		t.Fatalf("err = %v, want missing -data", err)
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	err := run([]string{"-data", t.TempDir(), "-listen", "not-an-address:-1"})
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunRejectsUnwritableDataDir covers journal-open failures surfacing as
// startup errors rather than a half-started daemon.
func TestRunRejectsUnwritableDataDir(t *testing.T) {
	err := run([]string{"-data", "/proc/definitely/not/writable", "-listen", "127.0.0.1:0"})
	if err == nil {
		t.Fatal("unwritable data dir accepted")
	}
}
