// etsn-cncd runs the CNC as a long-lived service: an HTTP/JSON daemon that
// accepts Qcc-style configuration documents and incremental stream
// admissions per tenant, schedules them on a bounded worker pool with
// per-job deadlines and retry backoff, degrades gracefully under overload
// (shedding best-effort and loose TCT streams, never event-triggered
// critical traffic), and journals every job transition to a write-ahead
// log so a crash mid-solve recovers on restart.
//
// Usage:
//
//	etsn-cncd -data DIR [-listen HOST:PORT] [-workers N] [-queue N]
//	          [-tenant-quota N] [-job-timeout D] [-drain-timeout D]
//	          [-dash-history bench/history.jsonl]
//
// On startup the daemon replays DIR/journal.jsonl, restores every tenant's
// plan history, re-enqueues unfinished jobs, prints "listening on ADDR" to
// stdout, and serves until SIGINT/SIGTERM. Shutdown drains: /readyz flips
// to 503, new submissions are rejected, in-flight jobs get -drain-timeout
// to finish, and whatever remains is journal-parked for the next start.
//
// The live dashboard (internal/dash) serves at http://ADDR/ next to the
// API: JSON registry snapshots at /api/metrics (?tenant= narrows to one
// tenant's view), an SSE stream at /api/metrics/stream, and — when
// -dash-history points at a bench history file — wall-time trend verdicts
// at /api/trend.
//
// See DESIGN.md §13 for the API and recovery invariants.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etsn/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-cncd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("etsn-cncd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8428", "HTTP listen address (use :0 for an ephemeral port)")
	dataDir := fs.String("data", "", "data directory for the job journal (required)")
	workers := fs.Int("workers", 0, "solver worker-pool size (default 2)")
	queueDepth := fs.Int("queue", 0, "global pending-job queue bound (default 16)")
	tenantQuota := fs.Int("tenant-quota", 0, "max queued+running jobs per tenant (default 4)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job solver deadline (default 30s)")
	drainTimeout := fs.Duration("drain-timeout", 0, "graceful-shutdown budget for in-flight jobs (default 10s)")
	maxRetries := fs.Int("max-retries", 0, "retries after a solver timeout (default 2)")
	solveDelay := fs.Duration("solve-delay", 0, "fault-injection: artificial delay before each solve (testing only)")
	dashHistory := fs.String("dash-history", "", "history.jsonl file backing the dashboard's /api/trend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		fs.Usage()
		return fmt.Errorf("missing -data")
	}

	srv, err := service.New(service.Config{
		DataDir:      *dataDir,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		TenantQuota:  *tenantQuota,
		JobTimeout:   *jobTimeout,
		DrainTimeout: *drainTimeout,
		MaxRetries:   *maxRetries,
		SolveDelay:   *solveDelay,
		HistoryPath:  *dashHistory,
	})
	if err != nil {
		return err
	}
	if n := srv.RecoveredJobs; n > 0 {
		fmt.Fprintf(os.Stderr, "etsn-cncd: recovered %d unfinished job(s) from the journal\n", n)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: service.Handler(srv)}

	// The gate driver (and humans running -listen :0) parse this line.
	fmt.Printf("listening on %s\n", ln.Addr())
	_ = os.Stdout.Sync()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "etsn-cncd: %s: draining\n", sig)
	case err := <-errCh:
		srv.Shutdown()
		return err
	}

	// Flip readiness first so load balancers stop routing, then drain jobs
	// (finish or journal-park), then close the HTTP listener.
	srv.BeginDrain()
	srv.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "etsn-cncd: drained, exiting")
	return nil
}
