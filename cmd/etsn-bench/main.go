// etsn-bench regenerates every table and figure of the paper's evaluation
// (Sec. VI): Fig. 11 (ECT latency CDFs by method and load), Fig. 12 (PERIOD
// with multiplied slot budgets), Fig. 14 (latency/jitter vs load and
// message length on the simulation topology), Fig. 15 (impact of ECT on TCT
// streams), Fig. 16 (four concurrent ECT streams), and the headline numbers
// at 75% load.
//
// Usage:
//
//	etsn-bench [-experiment all|headline|fig11|fig12|fig14|fig15|fig16]
//	           [-duration 4s] [-seed 60802]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"etsn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etsn-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, headline, fig11, fig12, fig14, fig15, fig16, fourway, frer, scale, sync, ablation, faults")
	duration := fs.Duration("duration", experiments.DefaultDuration, "simulated time per run")
	seed := fs.Int64("seed", experiments.DefaultSeed, "random seed for event arrivals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.RunOptions{Duration: *duration, Seed: *seed}

	type runner struct {
		name string
		fn   func() error
	}
	all := []runner{
		{"headline", func() error {
			r, err := experiments.Headline(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig11", func() error {
			r, err := experiments.Fig11(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig12", func() error {
			r, err := experiments.Fig12(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig14", func() error {
			r, err := experiments.Fig14(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig15", func() error {
			r, err := experiments.Fig15(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if !r.DeadlinesHeld() {
				return fmt.Errorf("fig15: a TCT deadline was violated")
			}
			return nil
		}},
		{"fig16", func() error {
			r, err := experiments.Fig16(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fourway", func() error {
			r, err := experiments.FourWay(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"frer", func() error {
			r, err := experiments.FRER(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"scale", func() error {
			r, err := experiments.Scale(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"sync", func() error {
			r, err := experiments.Sync(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"ablation", func() error {
			n, err := experiments.AblationNProb(opts)
			if err != nil {
				return err
			}
			n.WriteTable(w)
			fmt.Fprintln(w)
			p, err := experiments.AblationPrudent(opts)
			if err != nil {
				return err
			}
			p.WriteTable(w)
			fmt.Fprintln(w)
			b, err := experiments.AblationBackend(opts)
			if err != nil {
				return err
			}
			b.WriteTable(w)
			return nil
		}},
		{"faults", func() error {
			r, err := experiments.Faults(opts)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if !r.Recovered() {
				return fmt.Errorf("faults: network did not self-heal (last miss %v, ECT worst %v vs bound %v)",
					r.LastMiss, r.ECTWorstPost, r.ECTBound)
			}
			return nil
		}},
	}

	if *experiment == "all" {
		for i, r := range all {
			if i > 0 {
				fmt.Fprintln(w)
			}
			start := time.Now()
			if err := r.fn(); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			fmt.Fprintf(w, "[%s completed in %v]\n", r.name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	for _, r := range all {
		if r.name == *experiment {
			return r.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q", *experiment)
}
