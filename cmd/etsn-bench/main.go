// etsn-bench regenerates every table and figure of the paper's evaluation
// (Sec. VI): Fig. 11 (ECT latency CDFs by method and load), Fig. 12 (PERIOD
// with multiplied slot budgets), Fig. 14 (latency/jitter vs load and
// message length on the simulation topology), Fig. 15 (impact of ECT on TCT
// streams), Fig. 16 (four concurrent ECT streams), and the headline numbers
// at 75% load.
//
// Every experiment additionally writes a machine-readable benchmark record
// (BENCH_<experiment>.json) with solver-effort and simulator-throughput
// counters, harvested from the run's metrics registry.
//
// Usage:
//
//	etsn-bench [-experiment all|headline|fig11|fig12|fig14|fig15|fig16]
//	           [-duration 4s] [-seed 60802] [-parallel N]
//	           [-engine seq|shard] [-shards N]
//	           [-backend auto|placer|greedy|tabu|anneal|smt|smt-incremental|race]
//	           [-backend-compare]
//	           [-compare-sequential] [-attrib]
//	           [-metrics out.prom] [-trace-phases out.trace.json]
//	           [-pprof cpu=FILE|mem=FILE|HOST:PORT]
//	           [-bench-dir DIR] [-bench-name NAME]
//	           [-check-bench FILE] [-history FILE]
//	           [-trend FILE] [-trend-threshold 0.10] [-trend-strict]
//
// -parallel N fans independent experiment cells (load x method grid points)
// out over N workers; the tables printed are byte-identical to a sequential
// run. -compare-sequential additionally reruns each experiment with
// -parallel 1 (output discarded) and records both wall times in the bench
// artifact.
//
// -attrib enables the per-frame latency attribution in every simulation
// (the "attrib" experiment forces it regardless); the bench artifact then
// carries an attrib section with frame and bound-conformance counters.
// -history FILE appends one JSON line per completed experiment
// ({"experiment","wall_ms","parallel","seed"}) so wall-time trends
// accumulate across runs (see bench/history.jsonl).
//
// -engine shard runs every simulation on the conservative-parallel sharded
// engine (internal/psim) with -shards workers; tables stay byte-identical
// because the sharded engine reproduces the sequential results exactly.
// The scale experiment additionally sweeps the sharded engine over shard
// counts 1/2/4/8 and emits BENCH_psim.json, gated by -check-bench.
//
// -trend FILE analyzes an accumulated history file: each experiment's
// newest wall time is compared against the median of its previous (up to
// five) runs, and runs more than -trend-threshold over that baseline are
// flagged. -trend -json emits the machine-readable trend document
// ({name, n, median_ms, last_ms, delta_pct, flagged} per experiment,
// byte-identical to the dashboard's /api/trend endpoint) instead of the
// human table. Under -trend-strict a flagged regression exits with code
// 2 (any other failure exits 1), so CI can gate on regressions without
// parsing text.
//
// -dash ADDR serves the live observability dashboard (internal/dash) on
// ADDR while experiments run: the current experiment's registry and
// phase tracer are published as JSON snapshots and an SSE stream, with
// the wall-time history chart backed by -history (default
// bench/history.jsonl). After the last experiment the process keeps
// serving until SIGINT/SIGTERM, then drains gracefully.
//
// -backend NAME plans every simulation with that scheduling backend
// (default auto: placer with exact-SMT fallback; "race" runs them all
// concurrently and takes the first verified plan in priority order).
// -backend-compare appends a per-backend comparison section (schedulable
// ratio and solve wall over the load grid) to the fig11 and fig14 tables.
// The "backends" experiment benchmarks every backend standalone plus the
// race over the fig11 load grid and emits BENCH_backends.json, gated by
// -check-bench (see bench/BENCH_backends.json).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"etsn/internal/core"
	"etsn/internal/dash"
	"etsn/internal/experiments"
	"etsn/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-bench:", err)
		// Exit 2 is the documented -trend-strict regression verdict;
		// everything else is 1.
		if errors.Is(err, errTrendRegressed) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etsn-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, headline, fig11, fig12, fig14, fig15, fig16, fourway, frer, scale, sync, ablation, faults, attrib, smt, backends")
	duration := fs.Duration("duration", experiments.DefaultDuration, "simulated time per run")
	seed := fs.Int64("seed", experiments.DefaultSeed, "random seed for event arrivals")
	metrics := fs.String("metrics", "", "write run metrics to this file (.json for JSON, else Prometheus text)")
	tracePhases := fs.String("trace-phases", "", "write a Chrome trace_event JSON file of planner/simulation phases")
	pprofSpec := fs.String("pprof", "", "profiling: cpu=FILE, mem=FILE, or HOST:PORT for a live pprof server")
	benchDir := fs.String("bench-dir", ".", "directory for BENCH_<experiment>.json artifacts")
	benchName := fs.String("bench-name", "", "override the artifact name (BENCH_<name>.json)")
	checkBench := fs.String("check-bench", "", "validate an existing bench artifact and exit")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for independent experiment cells (1 = sequential)")
	compareSeq := fs.Bool("compare-sequential", false, "rerun each experiment with -parallel 1 and record both wall times in the bench artifact")
	attribOn := fs.Bool("attrib", false, "enable per-frame latency attribution in every simulation")
	history := fs.String("history", "", "append one {experiment, wall_ms, parallel, seed} JSON line per run to this file")
	engine := fs.String("engine", "", "simulation engine for every run: seq (default) or shard (conservative-parallel, internal/psim)")
	shards := fs.Int("shards", 0, "shard count for -engine shard (0 = GOMAXPROCS)")
	backendName := fs.String("backend", "", "scheduling backend for every plan: auto (default), placer, greedy, tabu, anneal, smt, smt-incremental, or race")
	decompose := fs.Bool("decompose", false, "split every E-TSN solve into conflict-graph components solved independently and merged")
	backendCompare := fs.Bool("backend-compare", false, "append a per-backend comparison section to the fig11/fig14 tables (walls are not byte-stable)")
	trend := fs.String("trend", "", "analyze a wall-time history file (bench/history.jsonl) for regressions and exit")
	trendThreshold := fs.Float64("trend-threshold", 0.10, "flag a run whose wall time exceeds its rolling baseline by more than this fraction")
	trendStrict := fs.Bool("trend-strict", false, "exit with code 2 when -trend flags a regression")
	trendJSON := fs.Bool("json", false, "with -trend: emit the machine-readable trend document instead of the human table")
	dashAddr := fs.String("dash", "", "serve the live dashboard on this address (e.g. :8429) while experiments run; stays up until SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trend != "" {
		return runTrend(w, *trend, *trendThreshold, *trendStrict, *trendJSON)
	}
	if *checkBench != "" {
		a, err := experiments.LoadBenchArtifact(*checkBench)
		if err != nil {
			return err
		}
		if err := a.Validate(); err != nil {
			return err
		}
		if len(a.SMT) > 0 {
			fmt.Fprintf(w, "%s: valid bench artifact (%s, wall %dms, %d smt classes)\n",
				*checkBench, a.Experiment, a.WallMs, len(a.SMT))
		} else if a.Backends != nil {
			fmt.Fprintf(w, "%s: valid bench artifact (%s, wall %dms, %d backend points, %d races)\n",
				*checkBench, a.Experiment, a.WallMs, len(a.Backends.Points), len(a.Backends.Races))
		} else {
			fmt.Fprintf(w, "%s: valid bench artifact (%s, wall %dms, %d events)\n",
				*checkBench, a.Experiment, a.WallMs, a.Sim.Events)
		}
		return nil
	}
	if *pprofSpec != "" {
		stop, err := obs.StartPprof(*pprofSpec)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	opts := experiments.RunOptions{Duration: *duration, Seed: *seed, Parallel: *parallel,
		Attribution: *attribOn, Engine: *engine, Shards: *shards,
		Backend: backend, Decompose: *decompose, BackendCompare: *backendCompare}

	// -dash: serve the live dashboard for the whole run. Each experiment
	// publishes its fresh registry/tracer as it starts (runOne), so SSE
	// clients watch the current experiment; the trend chart reads the
	// same history file -history appends to.
	var dashRunner *dash.Runner
	if *dashAddr != "" {
		histPath := *history
		if histPath == "" {
			histPath = "bench/history.jsonl"
		}
		dashRunner, err = dash.Start(*dashAddr, dash.NewServer(dash.Options{
			HistoryPath: histPath, TrendThreshold: *trendThreshold}))
		if err != nil {
			return err
		}
		defer func() { _ = dashRunner.Shutdown(2 * time.Second) }()
		fmt.Fprintf(os.Stderr, "etsn-bench: dashboard listening on http://%s\n", dashRunner.Addr())
	}
	// waitDash keeps the dashboard up after a successful run until
	// SIGINT/SIGTERM, then drains it.
	waitDash := func() error {
		if dashRunner == nil {
			return nil
		}
		fmt.Fprintf(os.Stderr, "etsn-bench: experiments done; dashboard on http://%s until SIGINT/SIGTERM\n",
			dashRunner.Addr())
		dashRunner.WaitSignal()
		return dashRunner.Shutdown(5 * time.Second)
	}

	type runner struct {
		name string
		fn   func(experiments.RunOptions, io.Writer) error
	}
	// The smt and backends runners stash their sections here; runOne
	// attaches them to that run's artifact (the registry harvest carries
	// only the aggregate counters, not the per-class/per-point split).
	var smtClasses []experiments.BenchSMTClass
	var backendBench *experiments.BenchBackends
	var scaleBench *experiments.BenchScale
	all := []runner{
		{"headline", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Headline(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig11", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if len(r.Backends) > 0 {
				fmt.Fprintln(w)
				r.WriteBackendTable(w)
			}
			return nil
		}},
		{"fig12", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Fig12(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fig14", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Fig14(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if len(r.Backends) > 0 {
				fmt.Fprintln(w)
				r.WriteBackendTable(w)
			}
			return nil
		}},
		{"fig15", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Fig15(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if !r.DeadlinesHeld() {
				return fmt.Errorf("fig15: a TCT deadline was violated")
			}
			return nil
		}},
		{"fig16", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Fig16(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"fourway", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.FourWay(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"frer", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.FRER(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"scale", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Scale(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			// The scale run also sweeps the parallel engine over shard
			// counts on the same scenario, emitting a second artifact
			// (BENCH_psim.json) gated on byte-identical results.
			start := time.Now()
			sweep, err := experiments.PsimSweep(o)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			sweep.WriteTable(w)
			art := sweep.Artifact(o, time.Since(start))
			if err := art.Write(filepath.Join(*benchDir, "BENCH_psim.json")); err != nil {
				return err
			}
			if err := art.Validate(); err != nil {
				return err
			}
			// The decomposition corpus sweep: monolithic vs decomposed
			// solver walls over the tree/mesh cell grid, attached to this
			// run's artifact (BENCH_scale.json) and gated by -check-bench.
			ss, err := experiments.ScaleSweep(o)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			ss.WriteTable(w)
			scaleBench = ss
			return nil
		}},
		{"sync", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Sync(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"ablation", func(o experiments.RunOptions, w io.Writer) error {
			n, err := experiments.AblationNProb(o)
			if err != nil {
				return err
			}
			n.WriteTable(w)
			fmt.Fprintln(w)
			p, err := experiments.AblationPrudent(o)
			if err != nil {
				return err
			}
			p.WriteTable(w)
			fmt.Fprintln(w)
			b, err := experiments.AblationBackend(o)
			if err != nil {
				return err
			}
			b.WriteTable(w)
			return nil
		}},
		{"faults", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Faults(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			if !r.Recovered() {
				return fmt.Errorf("faults: network did not self-heal (last miss %v, ECT worst %v vs bound %v)",
					r.LastMiss, r.ECTWorstPost, r.ECTBound)
			}
			return nil
		}},
		{"attrib", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Attrib(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			return nil
		}},
		{"smt", func(o experiments.RunOptions, w io.Writer) error {
			classes, err := experiments.SMTBench(o)
			if err != nil {
				return err
			}
			experiments.WriteSMTBenchTable(w, classes)
			smtClasses = classes
			return nil
		}},
		{"backends", func(o experiments.RunOptions, w io.Writer) error {
			r, err := experiments.Backends(o)
			if err != nil {
				return err
			}
			r.WriteTable(w)
			backendBench = r.Bench()
			return nil
		}},
	}

	// Each experiment runs with a fresh registry and tracer so its bench
	// artifact reflects that run alone. The -metrics and -trace-phases
	// files carry the last experiment executed (the only one unless
	// -experiment all).
	var lastReg *obs.Registry
	var lastTracer *obs.Tracer
	runOne := func(r runner) error {
		o := opts
		o.Obs = obs.NewRegistry()
		o.Phases = obs.NewTracer()
		if dashRunner != nil {
			dashRunner.Server.Publish(o.Obs, o.Phases)
		}
		smtClasses = nil
		backendBench = nil
		scaleBench = nil
		start := time.Now()
		if err := r.fn(o, w); err != nil {
			return err
		}
		wall := time.Since(start)
		lastReg, lastTracer = o.Obs, o.Phases
		name := *benchName
		if name == "" {
			name = r.name
		}
		art := experiments.NewBenchArtifact(name, o.Obs, o, wall)
		art.SMT = smtClasses
		art.Backends = backendBench
		art.Scale = scaleBench
		if *compareSeq {
			// Rerun sequentially with tables discarded, so the artifact
			// records the fan-out speedup on this machine.
			so := opts
			so.Parallel = 1
			seqStart := time.Now()
			if err := r.fn(so, io.Discard); err != nil {
				return fmt.Errorf("sequential rerun: %w", err)
			}
			art.WallSequentialMs = time.Since(seqStart).Milliseconds()
		}
		if err := art.Write(filepath.Join(*benchDir, "BENCH_"+name+".json")); err != nil {
			return err
		}
		if *history != "" {
			if err := experiments.AppendHistory(*history, name, art, time.Now()); err != nil {
				return fmt.Errorf("-history: %w", err)
			}
		}
		return nil
	}
	exports := func() error {
		if *metrics != "" && lastReg != nil {
			if err := lastReg.WriteMetricsFile(*metrics); err != nil {
				return err
			}
		}
		if *tracePhases != "" && lastTracer != nil {
			if err := lastTracer.WriteChromeTraceFile(*tracePhases); err != nil {
				return err
			}
		}
		return nil
	}

	if *experiment == "all" {
		for i, r := range all {
			if i > 0 {
				fmt.Fprintln(w)
			}
			start := time.Now()
			if err := runOne(r); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			// Timing goes to stderr: stdout stays byte-identical across
			// -parallel settings (and machines).
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.name, time.Since(start).Round(time.Millisecond))
		}
		if err := exports(); err != nil {
			return err
		}
		return waitDash()
	}
	for _, r := range all {
		if r.name == *experiment {
			if err := runOne(r); err != nil {
				return err
			}
			if err := exports(); err != nil {
				return err
			}
			return waitDash()
		}
	}
	return fmt.Errorf("unknown experiment %q", *experiment)
}
