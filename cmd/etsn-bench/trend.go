package main

import (
	"errors"
	"fmt"
	"io"

	"etsn/internal/dash"
)

// errTrendRegressed is the -trend-strict failure; main maps it to exit
// code 2 so CI can gate on regressions without parsing human text.
var errTrendRegressed = errors.New("trend regression")

// runTrend implements etsn-bench -trend: analyze the history file with
// the shared internal/dash analyzer and print one verdict per experiment
// — human text by default, the machine-readable trend document with
// -json (byte-identical to the dashboard's /api/trend endpoint). With
// -trend-strict any flagged regression yields errTrendRegressed (exit
// code 2).
func runTrend(w io.Writer, path string, threshold float64, strict, asJSON bool) error {
	reports, err := dash.AnalyzeTrendFile(path, threshold)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("%s: no history entries", path)
	}
	if asJSON {
		if err := dash.WriteTrendJSON(w, reports, threshold); err != nil {
			return err
		}
	} else {
		dash.WriteTrendText(w, path, reports, threshold)
	}
	if n := dash.FlaggedCount(reports); n > 0 && strict {
		return fmt.Errorf("%w: %d experiment(s) regressed more than %.0f%%",
			errTrendRegressed, n, threshold*100)
	}
	return nil
}
