package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// historyEntry mirrors the JSON lines appendHistory writes to
// bench/history.jsonl.
type historyEntry struct {
	Experiment string `json:"experiment"`
	WallMs     int64  `json:"wall_ms"`
	Parallel   int    `json:"parallel"`
	Seed       int64  `json:"seed"`
	UnixMs     int64  `json:"unix_ms"`
}

// trendWindow bounds the rolling baseline: the median of up to this many
// runs immediately preceding the latest one.
const trendWindow = 5

// trendReport is one experiment's verdict from a history file.
type trendReport struct {
	Experiment string
	// Latest is the newest wall time; BaselineMs the median of up to
	// trendWindow prior runs (0 when there is no prior run to compare
	// against).
	LatestMs   int64
	BaselineMs int64
	// Ratio is Latest/Baseline; Regressed marks ratio > 1+threshold.
	Ratio     float64
	Regressed bool
	Runs      int
}

// analyzeTrend groups a history stream by experiment and compares each
// experiment's newest wall time against the median of its preceding runs.
// A median is robust to the occasional loaded-machine outlier that a mean
// would smear into the baseline.
func analyzeTrend(r io.Reader, threshold float64) ([]trendReport, error) {
	byExp := make(map[string][]historyEntry)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e historyEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("history line %q: %w", line, err)
		}
		if e.Experiment == "" || e.WallMs <= 0 {
			continue
		}
		if _, seen := byExp[e.Experiment]; !seen {
			order = append(order, e.Experiment)
		}
		byExp[e.Experiment] = append(byExp[e.Experiment], e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []trendReport
	for _, name := range order {
		runs := byExp[name]
		latest := runs[len(runs)-1]
		rep := trendReport{Experiment: name, LatestMs: latest.WallMs, Runs: len(runs)}
		prior := runs[:len(runs)-1]
		if len(prior) > trendWindow {
			prior = prior[len(prior)-trendWindow:]
		}
		if len(prior) > 0 {
			walls := make([]int64, len(prior))
			for i, e := range prior {
				walls[i] = e.WallMs
			}
			sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
			rep.BaselineMs = walls[len(walls)/2]
			rep.Ratio = float64(rep.LatestMs) / float64(rep.BaselineMs)
			rep.Regressed = rep.Ratio > 1+threshold
		}
		out = append(out, rep)
	}
	return out, nil
}

// runTrend implements etsn-bench -trend: read the history file, print one
// verdict per experiment, and (with -trend-strict) fail on any regression.
func runTrend(w io.Writer, path string, threshold float64, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reports, err := analyzeTrend(f, threshold)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("%s: no history entries", path)
	}
	regressed := 0
	fmt.Fprintf(w, "wall-time trend (%s, threshold +%.0f%%)\n", path, threshold*100)
	for _, r := range reports {
		switch {
		case r.BaselineMs == 0:
			fmt.Fprintf(w, "  %-10s %6dms  (first run, no baseline)\n", r.Experiment, r.LatestMs)
		case r.Regressed:
			regressed++
			fmt.Fprintf(w, "  %-10s %6dms  REGRESSED %.0f%% over baseline %dms (%d runs)\n",
				r.Experiment, r.LatestMs, (r.Ratio-1)*100, r.BaselineMs, r.Runs)
		default:
			fmt.Fprintf(w, "  %-10s %6dms  ok (%+.0f%% vs baseline %dms, %d runs)\n",
				r.Experiment, r.LatestMs, (r.Ratio-1)*100, r.BaselineMs, r.Runs)
		}
	}
	if regressed > 0 && strict {
		return fmt.Errorf("%d experiment(s) regressed more than %.0f%%", regressed, threshold*100)
	}
	return nil
}
