package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etsn/internal/dash"
)

func writeHistory(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendFlagsRegression(t *testing.T) {
	path := writeHistory(t,
		`{"experiment":"headline","wall_ms":100,"parallel":4,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":102,"parallel":4,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":98,"parallel":4,"seed":1,"unix_ms":3}`,
		`{"experiment":"headline","wall_ms":130,"parallel":4,"seed":1,"unix_ms":4}`,
		`{"experiment":"smt","wall_ms":50,"parallel":1,"seed":1,"unix_ms":5}`,
		`{"experiment":"smt","wall_ms":51,"parallel":1,"seed":1,"unix_ms":6}`,
	)
	var out strings.Builder
	// Non-strict: regressions are reported but do not fail the run.
	if err := run([]string{"-trend", path}, &out); err != nil {
		t.Fatalf("non-strict trend: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("expected a flagged regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "smt") || strings.Contains(out.String(), "smt") && !strings.Contains(out.String(), "ok") {
		t.Fatalf("expected smt to pass:\n%s", out.String())
	}
	out.Reset()
	err := run([]string{"-trend", path, "-trend-strict"}, &out)
	if err == nil {
		t.Fatalf("strict trend should fail:\n%s", out.String())
	}
	// main maps this sentinel to exit code 2 so CI can distinguish
	// "perf regressed" from "bench itself broke".
	if !errors.Is(err, errTrendRegressed) {
		t.Fatalf("strict failure should be errTrendRegressed, got %v", err)
	}
}

func TestTrendJSONMatchesLibrary(t *testing.T) {
	path := writeHistory(t,
		`{"experiment":"headline","wall_ms":100,"parallel":4,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":100,"parallel":4,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":130,"parallel":4,"seed":1,"unix_ms":3}`,
	)
	var out strings.Builder
	if err := run([]string{"-trend", path, "-json"}, &out); err != nil {
		t.Fatalf("-trend -json: %v\n%s", err, out.String())
	}
	var doc struct {
		ThresholdPct float64 `json:"threshold_pct"`
		Flagged      int     `json:"flagged"`
		Experiments  []struct {
			Name     string  `json:"name"`
			N        int     `json:"n"`
			MedianMs int64   `json:"median_ms"`
			LastMs   int64   `json:"last_ms"`
			DeltaPct float64 `json:"delta_pct"`
			Flagged  bool    `json:"flagged"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Flagged != 1 || len(doc.Experiments) != 1 {
		t.Fatalf("want one flagged experiment, got %+v", doc)
	}
	e := doc.Experiments[0]
	if e.Name != "headline" || e.MedianMs != 100 || e.LastMs != 130 || !e.Flagged {
		t.Fatalf("unexpected experiment verdict: %+v", e)
	}
	if e.DeltaPct != 30 {
		t.Fatalf("delta_pct = %v, want 30", e.DeltaPct)
	}

	// The CLI output is byte-for-byte what the dash library writes — the
	// same contract /api/trend serves.
	reports, err := dash.AnalyzeTrendFile(path, dash.DefaultTrendThreshold)
	if err != nil {
		t.Fatal(err)
	}
	var lib strings.Builder
	if err := dash.WriteTrendJSON(&lib, reports, dash.DefaultTrendThreshold); err != nil {
		t.Fatal(err)
	}
	if lib.String() != out.String() {
		t.Fatalf("CLI JSON diverges from dash.WriteTrendJSON:\nCLI:\n%s\nlib:\n%s", out.String(), lib.String())
	}
}

func TestTrendBaselineIsRollingMedian(t *testing.T) {
	// Seven prior runs, but only the last five (all 100ms) form the
	// baseline: the two ancient 10ms runs must not drag the median down.
	path := writeHistory(t,
		`{"experiment":"headline","wall_ms":10,"parallel":1,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":10,"parallel":1,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":3}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":4}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":5}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":6}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":7}`,
		`{"experiment":"headline","wall_ms":105,"parallel":1,"seed":1,"unix_ms":8}`,
	)
	reports, err := dash.AnalyzeTrendFile(path, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
	r := reports[0]
	if r.MedianMs != 100 {
		t.Fatalf("baseline %dms, want 100 (rolling median of last %d)", r.MedianMs, dash.TrendWindow)
	}
	if r.Flagged {
		t.Fatalf("105ms vs 100ms baseline must not exceed +10%%: %+v", r)
	}
}

func TestTrendFirstRunHasNoBaseline(t *testing.T) {
	path := writeHistory(t,
		`{"experiment":"fig11","wall_ms":77,"parallel":1,"seed":1,"unix_ms":1}`,
	)
	var out strings.Builder
	if err := run([]string{"-trend", path, "-trend-strict"}, &out); err != nil {
		t.Fatalf("single-entry history must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("expected first-run notice:\n%s", out.String())
	}
}
