package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeHistory(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendFlagsRegression(t *testing.T) {
	path := writeHistory(t,
		`{"experiment":"headline","wall_ms":100,"parallel":4,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":102,"parallel":4,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":98,"parallel":4,"seed":1,"unix_ms":3}`,
		`{"experiment":"headline","wall_ms":130,"parallel":4,"seed":1,"unix_ms":4}`,
		`{"experiment":"smt","wall_ms":50,"parallel":1,"seed":1,"unix_ms":5}`,
		`{"experiment":"smt","wall_ms":51,"parallel":1,"seed":1,"unix_ms":6}`,
	)
	var out strings.Builder
	// Non-strict: regressions are reported but do not fail the run.
	if err := run([]string{"-trend", path}, &out); err != nil {
		t.Fatalf("non-strict trend: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("expected a flagged regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "smt") || strings.Contains(out.String(), "smt") && !strings.Contains(out.String(), "ok") {
		t.Fatalf("expected smt to pass:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-trend", path, "-trend-strict"}, &out); err == nil {
		t.Fatalf("strict trend should fail:\n%s", out.String())
	}
}

func TestTrendBaselineIsRollingMedian(t *testing.T) {
	// Seven prior runs, but only the last five (all 100ms) form the
	// baseline: the two ancient 10ms runs must not drag the median down.
	path := writeHistory(t,
		`{"experiment":"headline","wall_ms":10,"parallel":1,"seed":1,"unix_ms":1}`,
		`{"experiment":"headline","wall_ms":10,"parallel":1,"seed":1,"unix_ms":2}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":3}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":4}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":5}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":6}`,
		`{"experiment":"headline","wall_ms":100,"parallel":1,"seed":1,"unix_ms":7}`,
		`{"experiment":"headline","wall_ms":105,"parallel":1,"seed":1,"unix_ms":8}`,
	)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reports, err := analyzeTrend(f, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
	r := reports[0]
	if r.BaselineMs != 100 {
		t.Fatalf("baseline %dms, want 100 (rolling median of last %d)", r.BaselineMs, trendWindow)
	}
	if r.Regressed {
		t.Fatalf("105ms vs 100ms baseline must not exceed +10%%: %+v", r)
	}
}

func TestTrendFirstRunHasNoBaseline(t *testing.T) {
	path := writeHistory(t,
		`{"experiment":"fig11","wall_ms":77,"parallel":1,"seed":1,"unix_ms":1}`,
	)
	var out strings.Builder
	if err := run([]string{"-trend", path, "-trend-strict"}, &out); err != nil {
		t.Fatalf("single-entry history must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("expected first-run notice:\n%s", out.String())
	}
}
