package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"etsn/internal/experiments"
)

func TestRunHeadline(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "headline", "-duration", "300ms",
		"-bench-dir", t.TempDir()}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"E-TSN", "PERIOD", "AVB", "jitter ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// promLine matches one sample of the text exposition: name, optional
// labels, and an integer value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

// promTypeLine matches a # TYPE comment.
var promTypeLine = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)

// TestRunHeadlineInstrumented exercises the acceptance path: metrics file in
// valid Prometheus exposition, Chrome trace with the planner and simulation
// phases, and a validating bench artifact.
func TestRunHeadlineInstrumented(t *testing.T) {
	dir := t.TempDir()
	prom := filepath.Join(dir, "out.prom")
	trace := filepath.Join(dir, "out.trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "headline", "-duration", "400ms",
		"-metrics", prom, "-trace-phases", trace, "-bench-dir", dir}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if promTypeLine.MatchString(line) {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d is not valid exposition: %q", i+1, line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("metrics file has no samples")
	}
	for _, want := range []string{"etsn_sim_events_total", "etsn_core_solves_total", "etsn_sim_latency_ns_bucket"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	got := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
		got[e.Name] = true
	}
	for _, want := range []string{"expand", "reserve", "solve", "simulate"} {
		if !got[want] {
			t.Errorf("trace missing phase %q (have %v)", want, got)
		}
	}

	art, err := experiments.LoadBenchArtifact(filepath.Join(dir, "BENCH_headline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := art.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if art.Sim.Events == 0 || art.Sim.EventsPerSec == 0 {
		t.Fatalf("artifact lacks throughput: %+v", art.Sim)
	}
}

func TestCheckBench(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "headline", "-duration", "300ms",
		"-bench-dir", dir, "-bench-name", "smoke"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join(dir, "BENCH_smoke.json")
	buf.Reset()
	if err := run([]string{"-check-bench", path}, &buf); err != nil {
		t.Fatalf("check-bench: %v", err)
	}
	if !strings.Contains(buf.String(), "valid bench artifact") {
		t.Fatalf("unexpected check output: %s", buf.String())
	}
	// A gutted artifact must fail validation.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"experiment":"x","wall_ms":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check-bench", bad}, &buf); err == nil {
		t.Fatal("empty artifact passed validation")
	}
}

func TestRunFig15ChecksDeadlines(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig15", "-duration", "300ms",
		"-bench-dir", t.TempDir()}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "impact of ECT on TCT streams") {
		t.Fatal("missing fig15 table")
	}
}

// TestRunParallelStdoutIdentical pins the fan-out determinism contract at
// the CLI boundary: -parallel N must not change a byte of stdout.
func TestRunParallelStdoutIdentical(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-experiment", "fig11", "-duration", "300ms",
		"-parallel", "1", "-bench-dir", t.TempDir()}, &seq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run([]string{"-experiment", "fig11", "-duration", "300ms",
		"-parallel", "4", "-bench-dir", t.TempDir()}, &par); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatalf("stdout differs between -parallel 1 and -parallel 4:\n--- sequential\n%s--- parallel\n%s",
			seq.String(), par.String())
	}
}

// TestRunCompareSequentialArtifact checks the artifact records both wall
// times when -compare-sequential is given.
func TestRunCompareSequentialArtifact(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "headline", "-duration", "300ms",
		"-parallel", "3", "-compare-sequential", "-bench-dir", dir}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	art, err := experiments.LoadBenchArtifact(filepath.Join(dir, "BENCH_headline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := art.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if art.Parallel != 3 {
		t.Fatalf("artifact parallel = %d, want 3", art.Parallel)
	}
	if art.WallSequentialMs <= 0 {
		t.Fatalf("artifact wall_sequential_ms = %d, want > 0", art.WallSequentialMs)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "all", "-duration", "200ms",
		"-bench-dir", t.TempDir()}, &buf); err != nil {
		t.Fatalf("run all: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Headline", "Fig. 11", "Fig. 12", "Fig. 14", "Fig. 15", "Fig. 16",
		"four-way", "seamless redundancy", "scalability", "802.1AS", "Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
