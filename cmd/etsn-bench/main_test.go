package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunHeadline(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "headline", "-duration", "300ms"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"E-TSN", "PERIOD", "AVB", "jitter ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig15ChecksDeadlines(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig15", "-duration", "300ms"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "impact of ECT on TCT streams") {
		t.Fatal("missing fig15 table")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "all", "-duration", "200ms"}, &buf); err != nil {
		t.Fatalf("run all: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Headline", "Fig. 11", "Fig. 12", "Fig. 14", "Fig. 15", "Fig. 16",
		"four-way", "seamless redundancy", "scalability", "802.1AS", "Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
