// etsn-trace analyzes the JSONL trace an attributed simulation writes
// (etsn-sim -attrib -trace FILE): it aggregates the "attrib" and "slack"
// line kinds into per-stream latency-attribution reports — frame counts,
// phase totals and shares, the worst frame with its per-hop decomposition,
// and bound-conformance scores with slack percentiles.
//
// Usage:
//
//	etsn-trace [-stream ID] [-json] [-lanes out.json] [trace.jsonl]
//
// With no file argument the trace is read from stdin, so it pipes:
//
//	etsn-sim -config net.json -attrib -trace /dev/stdout | etsn-trace
//
// -lanes additionally renders the attributed frames as a Chrome
// trace_event lane file (one track per link, one span per hop phase) for
// chrome://tracing or Perfetto.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"etsn/internal/model"
	"etsn/internal/obs"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etsn-trace", flag.ContinueOnError)
	streamFilter := fs.String("stream", "", "report only this stream")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	lanesPath := fs.String("lanes", "", "write the attributed frames as a Chrome trace_event lane file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader
	switch fs.NArg() {
	case 0:
		in = os.Stdin
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		fs.Usage()
		return fmt.Errorf("at most one trace file")
	}
	rep, err := Analyze(in)
	if err != nil {
		return err
	}
	if *lanesPath != "" {
		lf, err := os.Create(*lanesPath)
		if err != nil {
			return err
		}
		if err := obs.WriteLaneTrace(lf, sim.LanesFromRecords(rep.records)); err != nil {
			lf.Close()
			return err
		}
		if err := lf.Close(); err != nil {
			return err
		}
	}
	streams := rep.Streams
	if *streamFilter != "" {
		streams = nil
		for _, s := range rep.Streams {
			if s.Stream == *streamFilter {
				streams = append(streams, s)
			}
		}
		if len(streams) == 0 {
			return fmt.Errorf("stream %q not in trace (have %d attributed/bounded streams)",
				*streamFilter, len(rep.Streams))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(streams)
	}
	writeReport(w, streams)
	return nil
}

// PhaseShare is one phase's aggregate in a stream report.
type PhaseShare struct {
	Phase   string  `json:"phase"`
	TotalNs int64   `json:"total_ns"`
	Share   float64 `json:"share"`
}

// HopReport is one hop of the worst frame's decomposition.
type HopReport struct {
	Link      string `json:"link"`
	QueueNs   int64  `json:"queue_ns"`
	GateNs    int64  `json:"gate_ns"`
	PreemptNs int64  `json:"preempt_ns"`
	TxNs      int64  `json:"tx_ns"`
	PropNs    int64  `json:"prop_ns"`
}

// WorstFrame is the longest-sojourn frame of a stream.
type WorstFrame struct {
	Seq       int64       `json:"seq"`
	Frag      int         `json:"frag"`
	SojournNs int64       `json:"sojourn_ns"`
	Dominant  string      `json:"dominant_phase"`
	Hops      []HopReport `json:"hops"`
}

// ConfReport is a stream's bound-conformance section.
type ConfReport struct {
	BoundNs    int64          `json:"bound_ns"`
	Checked    int            `json:"checked"`
	Misses     int            `json:"misses"`
	MinSlackNs int64          `json:"min_slack_ns"`
	WorstLatNs int64          `json:"worst_lat_ns"`
	SlackP50Ns int64          `json:"slack_p50_ns"`
	SlackP90Ns int64          `json:"slack_p90_ns"`
	SlackP99Ns int64          `json:"slack_p99_ns"`
	MissCauses map[string]int `json:"miss_causes,omitempty"`
}

// StreamReport is the per-stream analysis of the trace.
type StreamReport struct {
	Stream string `json:"stream"`
	Frames int    `json:"frames"`
	// Phases lists the aggregate decomposition in taxonomy order.
	Phases []PhaseShare `json:"phases,omitempty"`
	Worst  *WorstFrame  `json:"worst,omitempty"`
	Conf   *ConfReport  `json:"conformance,omitempty"`
}

// Report is the full analysis: one entry per attributed or bounded stream,
// sorted by stream ID.
type Report struct {
	Streams []StreamReport
	// records keeps the reconstructed frame records for -lanes.
	records []sim.FrameRecord
}

// traceProbe sniffs the line kind before full decoding.
type traceProbe struct {
	Kind string `json:"kind"`
}

type seqKey struct {
	stream string
	seq    int64
}

// Analyze streams the JSONL trace once and aggregates it. Lines other
// than "attrib" and "slack" (the frame-event kinds) are skipped.
func Analyze(r io.Reader) (*Report, error) {
	type agg struct {
		frames int
		totals [sim.NumPhases]int64
		worst  sim.FrameRecord
		slack  []time.Duration
		conf   *ConfReport
	}
	streams := make(map[string]*agg)
	get := func(id string) *agg {
		a := streams[id]
		if a == nil {
			a = &agg{}
			streams[id] = a
		}
		return a
	}
	// The completing fragment of a message is the last attrib record of
	// its (stream, seq) before the slack line — the simulator emits them
	// at the same instant, attribution first.
	lastFrag := make(map[seqKey]sim.FrameRecord)
	var records []sim.FrameRecord

	sc := bufio.NewScanner(r)
	// Attribution lines carry a hop array per frame; give multi-hop paths
	// at high event rates ample room.
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var probe traceProbe
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch probe.Kind {
		case "attrib":
			var ev sim.AttribEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			rec, err := recordFromEvent(&ev)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			records = append(records, rec)
			a := get(ev.Stream)
			a.frames++
			for p := sim.PhaseQueue; p < sim.NumPhases; p++ {
				a.totals[p] += rec.PhaseTotal(p)
			}
			if a.frames == 1 || rec.Sojourn() > a.worst.Sojourn() {
				a.worst = rec
			}
			lastFrag[seqKey{ev.Stream, ev.Seq}] = rec
		case "slack":
			var ev sim.SlackEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			a := get(ev.Stream)
			if a.conf == nil {
				a.conf = &ConfReport{BoundNs: ev.BoundNs, MinSlackNs: ev.SlackNs}
			}
			c := a.conf
			c.Checked++
			if ev.SlackNs < c.MinSlackNs {
				c.MinSlackNs = ev.SlackNs
			}
			if ev.LatNs > c.WorstLatNs {
				c.WorstLatNs = ev.LatNs
			}
			a.slack = append(a.slack, time.Duration(ev.SlackNs))
			if ev.SlackNs < 0 {
				c.Misses++
				if rec, ok := lastFrag[seqKey{ev.Stream, ev.Seq}]; ok {
					if c.MissCauses == nil {
						c.MissCauses = make(map[string]int)
					}
					c.MissCauses[rec.DominantPhase().String()]++
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := &Report{records: records}
	ids := make([]string, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a := streams[id]
		sr := StreamReport{Stream: id, Frames: a.frames}
		if a.frames > 0 {
			var sum int64
			for _, v := range a.totals {
				sum += v
			}
			for p := sim.PhaseQueue; p < sim.NumPhases; p++ {
				share := 0.0
				if sum > 0 {
					share = float64(a.totals[p]) / float64(sum)
				}
				sr.Phases = append(sr.Phases, PhaseShare{
					Phase: p.String(), TotalNs: a.totals[p], Share: share,
				})
			}
			wf := &WorstFrame{
				Seq:       a.worst.Seq,
				Frag:      a.worst.Frag,
				SojournNs: a.worst.Sojourn(),
				Dominant:  a.worst.DominantPhase().String(),
			}
			for i := range a.worst.Hops {
				h := &a.worst.Hops[i]
				wf.Hops = append(wf.Hops, HopReport{
					Link:      h.Link.String(),
					QueueNs:   h.QueueNs,
					GateNs:    h.GateNs,
					PreemptNs: h.PreemptNs,
					TxNs:      h.TxNs,
					PropNs:    h.PropNs,
				})
			}
			sr.Worst = wf
		}
		if a.conf != nil {
			a.conf.SlackP50Ns = int64(stats.Quantile(a.slack, 0.50))
			a.conf.SlackP90Ns = int64(stats.Quantile(a.slack, 0.90))
			a.conf.SlackP99Ns = int64(stats.Quantile(a.slack, 0.99))
			sr.Conf = a.conf
		}
		out.Streams = append(out.Streams, sr)
	}
	return out, nil
}

// recordFromEvent reconstructs the simulator's FrameRecord from its JSONL
// rendering, so report logic (phase totals, dominant phase, lanes) is the
// exact code the in-process Results API runs.
func recordFromEvent(ev *sim.AttribEvent) (sim.FrameRecord, error) {
	rec := sim.FrameRecord{
		Stream:      model.StreamID(ev.Stream),
		Seq:         ev.Seq,
		Frag:        ev.Frag,
		Priority:    ev.Priority,
		CreatedNs:   ev.CreatedNs,
		EnqueuedNs:  ev.EnqueuedNs,
		DeliveredNs: ev.DeliveredNs,
	}
	for i := range ev.Hops {
		h := &ev.Hops[i]
		link, err := model.ParseLinkID(h.Link)
		if err != nil {
			return rec, err
		}
		rec.Hops = append(rec.Hops, sim.HopRecord{
			Link:      link,
			ArriveNs:  h.ArriveNs,
			StartNs:   h.StartNs,
			QueueNs:   h.QueueNs,
			GateNs:    h.GateNs,
			PreemptNs: h.PreemptNs,
			TxNs:      h.TxNs,
			PropNs:    h.PropNs,
		})
	}
	return rec, nil
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// writeReport renders the text report.
func writeReport(w io.Writer, streams []StreamReport) {
	for i, s := range streams {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "stream %s: %d frames\n", s.Stream, s.Frames)
		if len(s.Phases) > 0 {
			fmt.Fprintf(w, "  %-8s %14s %7s\n", "phase", "total(us)", "share")
			for _, p := range s.Phases {
				fmt.Fprintf(w, "  %-8s %14.2f %6.1f%%\n", p.Phase, us(p.TotalNs), p.Share*100)
			}
		}
		if wf := s.Worst; wf != nil {
			fmt.Fprintf(w, "  worst frame: seq=%d frag=%d sojourn=%.2fus dominant=%s\n",
				wf.Seq, wf.Frag, us(wf.SojournNs), wf.Dominant)
			fmt.Fprintf(w, "    %-14s %10s %10s %10s %10s %10s\n",
				"link", "queue(us)", "gate(us)", "preempt", "tx(us)", "prop(us)")
			for _, h := range wf.Hops {
				fmt.Fprintf(w, "    %-14s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
					h.Link, us(h.QueueNs), us(h.GateNs), us(h.PreemptNs), us(h.TxNs), us(h.PropNs))
			}
		}
		if c := s.Conf; c != nil {
			fmt.Fprintf(w, "  conformance: bound=%.2fus checked=%d misses=%d min_slack=%.2fus worst=%.2fus\n",
				us(c.BoundNs), c.Checked, c.Misses, us(c.MinSlackNs), us(c.WorstLatNs))
			fmt.Fprintf(w, "  slack percentiles: p50=%.2fus p90=%.2fus p99=%.2fus\n",
				us(c.SlackP50Ns), us(c.SlackP90Ns), us(c.SlackP99Ns))
			if len(c.MissCauses) > 0 {
				causes := make([]string, 0, len(c.MissCauses))
				for cause := range c.MissCauses {
					causes = append(causes, cause)
				}
				sort.Strings(causes)
				fmt.Fprintf(w, "  miss causes:")
				for _, cause := range causes {
					fmt.Fprintf(w, " %s=%d", cause, c.MissCauses[cause])
				}
				fmt.Fprintln(w)
			}
		}
	}
}
