package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etsn/internal/experiments"
	"etsn/internal/sched"
	"etsn/internal/sim"
)

// tracedRun simulates the testbed scenario with attribution and a JSONL
// trace, returning both the in-process results and the trace bytes so
// tests can check the offline analysis reproduces the online one.
func tracedRun(t *testing.T) (*sim.Results, []byte) {
	t.Helper()
	scen, err := experiments.NewTestbedScenario(0.5, experiments.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.Build(sched.MethodETSN, scen.Problem(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	raw, err := plan.SimulateOpts(scen.Network, sched.SimOptions{
		ECT: scen.ECT, BE: scen.BE, Duration: time.Second,
		Seed: experiments.DefaultSeed, Trace: &buf, Attribution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw, buf.Bytes()
}

// TestAnalyzeMatchesResultsAPI is the round-trip contract: the report
// etsn-trace derives from the JSONL trace must agree with the in-process
// Results API on every attributed stream — frame counts, phase totals,
// the worst frame and its cause breakdown, and the conformance scores.
func TestAnalyzeMatchesResultsAPI(t *testing.T) {
	raw, trace := tracedRun(t)
	rep, err := Analyze(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]StreamReport, len(rep.Streams))
	for _, s := range rep.Streams {
		byID[s.Stream] = s
	}
	attributed := raw.AttributedStreams()
	if len(attributed) == 0 {
		t.Fatal("no attributed streams in-process")
	}
	for _, id := range attributed {
		prof, _ := raw.Attribution(id)
		sr, ok := byID[string(id)]
		if !ok {
			t.Fatalf("stream %s missing from trace report", id)
		}
		if sr.Frames != prof.Frames {
			t.Fatalf("%s: trace frames %d, results %d", id, sr.Frames, prof.Frames)
		}
		for p := sim.PhaseQueue; p < sim.NumPhases; p++ {
			if got := sr.Phases[p].TotalNs; got != prof.TotalNs[p] {
				t.Fatalf("%s phase %s: trace total %d, results %d", id, p, got, prof.TotalNs[p])
			}
		}
		if sr.Worst == nil {
			t.Fatalf("%s: no worst frame in trace report", id)
		}
		if sr.Worst.Seq != prof.Worst.Seq || sr.Worst.Frag != prof.Worst.Frag ||
			sr.Worst.SojournNs != prof.Worst.Sojourn() ||
			sr.Worst.Dominant != prof.Worst.DominantPhase().String() {
			t.Fatalf("%s worst frame diverged: trace %+v, results seq=%d frag=%d sojourn=%d dominant=%s",
				id, sr.Worst, prof.Worst.Seq, prof.Worst.Frag,
				prof.Worst.Sojourn(), prof.Worst.DominantPhase())
		}
		if len(sr.Worst.Hops) != len(prof.Worst.Hops) {
			t.Fatalf("%s worst hops: trace %d, results %d", id, len(sr.Worst.Hops), len(prof.Worst.Hops))
		}
	}
	for _, id := range raw.BoundedStreams() {
		conf, _ := raw.Conformance(id)
		sr, ok := byID[string(id)]
		if !ok || sr.Conf == nil {
			t.Fatalf("bounded stream %s missing conformance in trace report", id)
		}
		c := sr.Conf
		if c.Checked != conf.Checked || c.Misses != conf.Misses ||
			c.BoundNs != int64(conf.Bound) || c.MinSlackNs != int64(conf.MinSlack) ||
			c.WorstLatNs != int64(conf.WorstLatency) {
			t.Fatalf("%s conformance diverged: trace %+v, results %+v", id, *c, conf)
		}
	}
}

// TestRunTextAndJSON drives the CLI end to end on a real trace file:
// stream filtering, the text report, the JSON report, and the lane export.
func TestRunTextAndJSON(t *testing.T) {
	_, trace := tracedRun(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(path, trace, 0o644); err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := run([]string{"-stream", "ect", path}, &text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"stream ect:", "worst frame:", "conformance:", "slack percentiles:", "tx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}

	lanes := filepath.Join(dir, "lanes.json")
	var js bytes.Buffer
	if err := run([]string{"-json", "-lanes", lanes, path}, &js); err != nil {
		t.Fatal(err)
	}
	var streams []StreamReport
	if err := json.Unmarshal(js.Bytes(), &streams); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if len(streams) == 0 {
		t.Fatal("empty JSON report")
	}
	laneData, err := os.ReadFile(lanes)
	if err != nil {
		t.Fatal(err)
	}
	var laneFile struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(laneData, &laneFile); err != nil {
		t.Fatalf("bad lane file: %v", err)
	}
	if len(laneFile.TraceEvents) == 0 {
		t.Fatal("empty lane file")
	}

	if err := run([]string{"-stream", "nope", path}, io.Discard); err == nil {
		t.Fatal("unknown -stream should error")
	}
}
