package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etsn/internal/core"
	"etsn/internal/service"
)

const testConfig = `{
  "network": {
    "devices": ["D1", "D2", "D3"],
    "switches": ["SW1"],
    "links": [
      {"a": "D1", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D2", "b": "SW1", "bandwidth_bps": 100000000},
      {"a": "D3", "b": "SW1", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "s1", "talker": "D1", "listener": "D3", "type": "time-triggered",
     "period_us": 620, "max_latency_us": 744, "payload_bytes": 4500, "share": true},
    {"id": "s2", "talker": "D2", "listener": "D3", "type": "event-triggered",
     "period_us": 620, "max_latency_us": 620, "payload_bytes": 1500}
  ],
  "options": {"n_prob": 5}
}`

func writeConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesDeployment(t *testing.T) {
	cfg := writeConfig(t)
	out := filepath.Join(t.TempDir(), "deploy.json")
	if err := run([]string{"-config", cfg, "-out", out, "-quiet"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"hyperperiod_us", "schedule", "gcls", "backend"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("missing key %q", key)
		}
	}
}

func TestRunMissingConfig(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "config") {
		t.Fatalf("err = %v, want missing -config", err)
	}
}

func TestRunBadConfigPath(t *testing.T) {
	if err := run([]string{"-config", "/does/not/exist.json", "-quiet"}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRunInfeasibleConfig(t *testing.T) {
	bad := strings.Replace(testConfig, `"max_latency_us": 744`, `"max_latency_us": 1`, 1)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path, "-quiet"}); err == nil {
		t.Fatal("expected scheduling error")
	}
}

func TestRunGCLText(t *testing.T) {
	cfg := writeConfig(t)
	out := filepath.Join(t.TempDir(), "gcl.txt")
	if err := run([]string{"-config", cfg, "-out", out, "-quiet", "-gcl"}); err != nil {
		t.Fatalf("run -gcl: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "port D1->SW1") {
		t.Fatalf("missing gate table:\n%s", data)
	}
}

func TestRunVerboseAndInstrumented(t *testing.T) {
	cfg := writeConfig(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "deploy.json")
	prom := filepath.Join(dir, "sched.prom")
	trace := filepath.Join(dir, "sched.trace.json")
	if err := run([]string{"-config", cfg, "-out", out, "-quiet", "-v",
		"-metrics", prom, "-trace-phases", trace}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"etsn_core_streams_total", "etsn_core_possibilities_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %s:\n%.400s", want, data)
		}
	}
	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"expand"`, `"reserve"`, `"solve"`} {
		if !strings.Contains(string(tdata), want) {
			t.Errorf("phase trace missing %s", want)
		}
	}
}

func TestRunVerboseSMTBackendReportsEffort(t *testing.T) {
	// Lighter than testConfig: the strict SMT formulation cannot wrap
	// slots past the period boundary the way the placer's virtual
	// timeline can, so give it headroom.
	smtCfg := strings.Replace(testConfig, `"payload_bytes": 4500`, `"payload_bytes": 1500`, 1)
	smtCfg = strings.Replace(smtCfg, `"options": {"n_prob": 5}`,
		`"options": {"n_prob": 2, "backend": "smt"}`, 1)
	path := filepath.Join(t.TempDir(), "smt.json")
	if err := os.WriteFile(path, []byte(smtCfg), 0o644); err != nil {
		t.Fatal(err)
	}
	prom := filepath.Join(t.TempDir(), "smt.prom")
	out := filepath.Join(t.TempDir(), "deploy.json")
	if err := run([]string{"-config", path, "-out", out, "-quiet", "-v", "-metrics", prom}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"etsn_smt_propagations_total", "etsn_smt_solves_total", "etsn_smt_theory_checks_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SMT metrics missing %s:\n%.600s", want, data)
		}
	}
}

// TestExitCodes pins the machine-readable exit-code mapping: the daemon's
// HTTP statuses and these process exit codes come from the same
// classification, so scripts and the service can never disagree.
func TestExitCodes(t *testing.T) {
	writeTo := func(doc string) string {
		path := filepath.Join(t.TempDir(), "c.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Feasible: exit 0.
	if err := run([]string{"-config", writeConfig(t), "-quiet", "-out", os.DevNull}); err != nil {
		t.Fatalf("feasible run: %v", err)
	}

	// Invalid input (unroutable talker): exit 2.
	invalid := strings.Replace(testConfig, `"talker": "D1"`, `"talker": "D9"`, 1)
	err := run([]string{"-config", writeTo(invalid), "-quiet", "-out", os.DevNull})
	if got := service.Classify(err).ExitCode(); got != 2 {
		t.Fatalf("invalid config: exit %d (%v), want 2", got, err)
	}

	// Malformed JSON: exit 2.
	err = run([]string{"-config", writeTo(`{"network":`), "-quiet", "-out", os.DevNull})
	if got := service.Classify(err).ExitCode(); got != 2 {
		t.Fatalf("malformed config: exit %d (%v), want 2", got, err)
	}

	// Infeasible deadline: exit 3.
	infeasible := strings.Replace(testConfig, `"max_latency_us": 744`, `"max_latency_us": 2`, 1)
	err = run([]string{"-config", writeTo(infeasible), "-quiet", "-out", os.DevNull})
	if got := service.Classify(err).ExitCode(); got != 3 {
		t.Fatalf("infeasible config: exit %d (%v), want 3", got, err)
	}

	// Missing file: exit 1 (internal/environmental).
	err = run([]string{"-config", "/does/not/exist.json", "-quiet"})
	if got := service.Classify(err).ExitCode(); got != 1 {
		t.Fatalf("missing file: exit %d (%v), want 1", got, err)
	}
}

// TestExitCodeTimeout pins exit 4 for budget exhaustion exactly as Compute
// surfaces it (wrapped), including the precedence rule: a budget error that
// wraps a scheduling failure is a timeout, never "infeasible".
func TestExitCodeTimeout(t *testing.T) {
	err := fmt.Errorf("cnc scheduling: %w",
		fmt.Errorf("smt: %w: wall clock exceeded", core.ErrBudget))
	if got := service.Classify(err).ExitCode(); got != 4 {
		t.Fatalf("budget error: exit %d, want 4", got)
	}
	both := fmt.Errorf("%w after partial search: %w", core.ErrBudget, core.ErrInfeasible)
	if got := service.Classify(both).ExitCode(); got != 4 {
		t.Fatalf("budget+infeasible: exit %d, want 4", got)
	}
}
