// etsn-sched runs the CNC pipeline offline: it reads a Qcc-style JSON
// configuration (topology + stream requirements), computes a verified E-TSN
// schedule, and writes the deployment (per-link slot tables and per-port
// Gate Control Lists) as JSON.
//
// Usage:
//
//	etsn-sched -config network.json [-out deployment.json] [-quiet] [-v]
//	           [-parallel N] [-bounds bounds.json]
//	           [-backend auto|placer|greedy|tabu|anneal|smt|smt-incremental|race]
//	           [-metrics out.prom] [-trace-phases out.trace.json]
//	           [-pprof cpu=FILE|mem=FILE|HOST:PORT]
//	           [-dash HOST:PORT]
//
// -dash serves the live observability dashboard (internal/dash) on the
// given address — planner metrics and phase spans over JSON/SSE plus the
// embedded page — and keeps serving after the deployment is written until
// SIGINT/SIGTERM, then drains gracefully and exits 0.
//
// -parallel N runs a portfolio of N diversified SMT replicas when the
// monolithic solver is selected; the first definitive answer wins and the
// rest are cancelled. N <= 1 keeps the single deterministic search. It
// overrides the configuration's options.portfolio.
//
// -backend selects the scheduling backend, overriding the configuration's
// options.backend: the first-fit or ALAP-greedy placer, the tabu or
// annealing phase-shift search, the exact SMT solvers, or "race" — all of
// them concurrently, first verified plan in priority order wins.
//
// -bounds FILE writes the analytic per-stream worst-case latencies as
// JSON ({"stream": nanoseconds}), the same bounds the simulator scores
// conformance against (sched.Plan.Bounds).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"etsn/internal/core"
	"etsn/internal/dash"
	"etsn/internal/gcl"
	"etsn/internal/obs"
	"etsn/internal/qcc"
	"etsn/internal/sched"
	"etsn/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etsn-sched:", err)
		// Machine-readable exit codes, shared with the daemon's HTTP
		// mapping (service.Classify): 1 internal, 2 invalid input,
		// 3 infeasible, 4 solver timeout.
		os.Exit(service.Classify(err).ExitCode())
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("etsn-sched", flag.ContinueOnError)
	configPath := fs.String("config", "", "path to the Qcc-style JSON configuration (required)")
	outPath := fs.String("out", "", "path for the deployment JSON (default: stdout)")
	quiet := fs.Bool("quiet", false, "suppress the human-readable summary on stderr")
	gclText := fs.Bool("gcl", false, "print the gate programs as admin-style tables instead of JSON")
	verbose := fs.Bool("v", false, "print solver effort statistics on stderr")
	metrics := fs.String("metrics", "", "write scheduler metrics to this file (.json for JSON, else Prometheus text)")
	tracePhases := fs.String("trace-phases", "", "write a Chrome trace_event JSON file of planner phases")
	pprofSpec := fs.String("pprof", "", "profiling: cpu=FILE, mem=FILE, or HOST:PORT for a live pprof server")
	parallel := fs.Int("parallel", 0, "diversified SMT portfolio width for the monolithic solver (overrides the config; <= 1 keeps the single search)")
	backend := fs.String("backend", "", "scheduling backend (overrides the config): auto, placer, greedy, tabu, anneal, smt, smt-incremental, or race")
	decompose := fs.Bool("decompose", false, "split the solve into conflict-graph components solved independently and merged (overrides the config)")
	boundsPath := fs.String("bounds", "", "write the analytic per-stream worst-case bounds as JSON to this file")
	dashAddr := fs.String("dash", "", "serve the live dashboard on this address (e.g. :8080; keeps serving after the run until SIGINT/SIGTERM)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -config")
	}
	if *pprofSpec != "" {
		stop, err := obs.StartPprof(*pprofSpec)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}
	f, err := os.Open(*configPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := qcc.Load(f)
	if err != nil {
		return err
	}
	if *parallel > 0 {
		cfg.Options.Portfolio = *parallel
	}
	if *backend != "" {
		if _, err := core.ParseBackend(*backend); err != nil {
			return fmt.Errorf("%w: %v", qcc.ErrBadConfig, err)
		}
		cfg.Options.Backend = *backend
	}
	if *decompose {
		cfg.Options.Decompose = true
	}
	if *metrics != "" || *verbose || *dashAddr != "" {
		cfg.Obs = obs.NewRegistry()
	}
	if *tracePhases != "" || *dashAddr != "" {
		cfg.Phases = obs.NewTracer()
	}
	var dashRunner *dash.Runner
	if *dashAddr != "" {
		srv := dash.NewServer(dash.Options{Registry: cfg.Obs, Tracer: cfg.Phases})
		dashRunner, err = dash.Start(*dashAddr, srv)
		if err != nil {
			return fmt.Errorf("-dash: %w", err)
		}
		defer func() { _ = dashRunner.Shutdown(2 * time.Second) }()
		fmt.Fprintf(os.Stderr, "etsn-sched: dashboard listening on http://%s\n", dashRunner.Addr())
	}
	dep, err := qcc.Compute(cfg)
	if err != nil {
		return err
	}
	if *metrics != "" {
		if err := cfg.Obs.WriteMetricsFile(*metrics); err != nil {
			return err
		}
	}
	if *tracePhases != "" {
		if err := cfg.Phases.WriteChromeTraceFile(*tracePhases); err != nil {
			return err
		}
	}
	if *boundsPath != "" {
		if err := writeBounds(*boundsPath, dep); err != nil {
			return fmt.Errorf("-bounds: %w", err)
		}
	}
	if !*quiet {
		printSummary(dep)
	}
	if *verbose {
		printSolverStats(dep)
	}
	out := os.Stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	if *gclText {
		gcl.WriteAllText(out, dep.GCLs)
		return waitDash(dashRunner)
	}
	if err := dep.WriteJSON(out); err != nil {
		return err
	}
	return waitDash(dashRunner)
}

// waitDash keeps the -dash server alive after the deployment is written,
// until SIGINT/SIGTERM, then drains it gracefully.
func waitDash(r *dash.Runner) error {
	if r == nil {
		return nil
	}
	fmt.Fprintf(os.Stderr, "etsn-sched: deployment written; dashboard serving on http://%s (Ctrl-C to exit)\n", r.Addr())
	r.WaitSignal()
	return r.Shutdown(5 * time.Second)
}

// writeBounds exports the analytic per-stream worst cases as a flat
// {"stream": nanoseconds} JSON object — machine-readable input for
// downstream conformance checks outside the simulator.
func writeBounds(path string, dep *qcc.Deployment) error {
	pl := &sched.Plan{Method: sched.MethodETSN, Schedule: dep.Result.Schedule,
		GCLs: dep.GCLs, Result: dep.Result}
	bounds := pl.Bounds(dep.Network, dep.Problem.ECT)
	out := make(map[string]int64, len(bounds))
	for id, b := range bounds {
		out[string(id)] = int64(b)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSolverStats reports the backend's cumulative search effort — for the
// SMT backends this covers every incremental re-solve and Minimize probe.
func printSolverStats(dep *qcc.Deployment) {
	st := dep.Result.SolverStats
	fmt.Fprintf(os.Stderr, "solver: %d solves, %d decisions, %d propagations, %d conflicts, %d theory checks, %d clauses, %d vars\n",
		st.Solves, st.Decisions, st.Propagations, st.Conflicts, st.TheoryChecks, st.Clauses, st.Vars)
	fmt.Fprintf(os.Stderr, "solver: %d restarts, %d learned clauses, %d theory propagations, max decision level %d\n",
		st.Restarts, st.Learned, st.TheoryProps, st.MaxDecisionLevel)
}

func printSummary(dep *qcc.Deployment) {
	sched := dep.Result.Schedule
	st := gcl.Summarize(dep.GCLs)
	fmt.Fprintf(os.Stderr, "schedule: %d streams, %d slots, hyperperiod %v (backend %s)\n",
		len(sched.Streams), sched.NumSlots(), sched.Hyperperiod, dep.Result.BackendUsed)
	fmt.Fprintf(os.Stderr, "gcls: %d ports, %d entries (max %d per port)\n",
		st.Ports, st.Entries, st.MaxEntriesPerPort)
	for _, s := range dep.Problem.TCT {
		wc, err := core.TCTWorstCase(dep.Network, dep.Result, s.ID)
		if err != nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "  TCT %-12s worst case %-12v deadline %v\n", s.ID, wc, s.E2E)
	}
	for _, e := range dep.Problem.ECT {
		bound, err := core.ECTWorstCaseBound(dep.Network, dep.Result, e.ID)
		if err != nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "  ECT %-12s worst case %-12v deadline %v\n", e.ID, bound, e.E2E)
	}
}
