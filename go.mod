module etsn

go 1.22
