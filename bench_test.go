package etsn_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"etsn/internal/core"
	"etsn/internal/experiments"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/obs"
	"etsn/internal/sched"
	"etsn/internal/sim"
	"etsn/internal/smt"
)

// benchOpts keeps per-iteration simulation time modest; etsn-bench runs the
// full durations.
var benchOpts = experiments.RunOptions{
	Duration: 500 * time.Millisecond,
	Seed:     experiments.DefaultSeed,
}

// BenchmarkHeadline regenerates the paper's headline numbers (Sec. VI-B,
// 75% load: E-TSN vs PERIOD vs AVB on the testbed).
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Summaries) != 3 {
			b.Fatal("incomplete headline result")
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11: ECT latency CDFs under three loads.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) == 0 {
			b.Fatal("empty fig11 result")
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: PERIOD with multiplied slot budgets.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) == 0 {
			b.Fatal("empty fig12 result")
		}
	}
}

// BenchmarkFig14 regenerates a representative slice of Fig. 14 (the full
// 45-run grid is run by etsn-bench): both load extremes at 1 and 5 MTU.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14Custom([]float64{0.25, 0.75}, []int{1, 5}, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) == 0 {
			b.Fatal("empty fig14 result")
		}
	}
}

// BenchmarkFig15 regenerates Fig. 15: the impact of ECT on TCT streams.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if !r.DeadlinesHeld() {
			b.Fatal("TCT deadline violated")
		}
	}
}

// BenchmarkFig16 regenerates Fig. 16: four concurrent ECT streams.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Streams) != 4 {
			b.Fatal("incomplete fig16 result")
		}
	}
}

// BenchmarkAblationNProb sweeps the possibilities-per-ECT knob.
func BenchmarkAblationNProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationNProb(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrudent contrasts prudent reservation on/off.
func BenchmarkAblationPrudent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrudent(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackend compares placer vs SMT vs incremental SMT.
func BenchmarkAblationBackend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBackend(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale plans and simulates the 24-device tree (the scalability
// extension).
func BenchmarkScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scale(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if r.TCTDeadlineMisses != 0 {
			b.Fatal("deadline misses at scale")
		}
	}
}

// BenchmarkSync runs the 802.1AS residual-error sweep.
func BenchmarkSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sync(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPlacer measures pure scheduling throughput on the
// testbed scenario at 75% load (the hardest planning instance of Sec. VI-B).
func BenchmarkSchedulerPlacer(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.75, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scen.Problem().Core()
		p.Opts.Backend = core.BackendPlacer
		if _, err := core.Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerSMTIncremental measures exact solving on a small
// instance.
func BenchmarkSchedulerSMTIncremental(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.25, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	scen.NProb = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scen.Problem().Core()
		p.Opts.Backend = core.BackendSMTIncremental
		if _, err := core.Schedule(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures event-processing throughput: one second of
// the 12-device simulation topology at 75% load under E-TSN.
func BenchmarkSimulator(b *testing.B) {
	scen, err := experiments.NewSimulationScenario(0.75, 1, 1, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.Build(sched.MethodETSN, scen.Problem(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(scen.Network, scen.ECT, scen.BE, time.Second, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulatorAttrib runs the BenchmarkSimulator workload with the
// attribution and registry knobs set, so the three variants below isolate
// the cost of per-frame causal attribution on the event loop.
func benchSimulatorAttrib(b *testing.B, attrib, withReg bool) {
	b.Helper()
	scen, err := experiments.NewSimulationScenario(0.75, 1, 1, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.Build(sched.MethodETSN, scen.Problem(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := sched.SimOptions{ECT: scen.ECT, BE: scen.BE,
			Duration: time.Second, Seed: int64(i) + 1, Attribution: attrib}
		if withReg {
			opts.Obs = obs.NewRegistry()
		}
		if _, err := plan.SimulateOpts(scen.Network, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorAttribOff is the baseline: attribution disabled, nil
// registry. The disabled path must cost nothing on the event loop
// (sim.TestAttributionDisabledNoAllocs pins the zero-allocation claim).
func BenchmarkSimulatorAttribOff(b *testing.B) { benchSimulatorAttrib(b, false, false) }

// BenchmarkSimulatorAttribOn measures the full causal decomposition:
// per-frame hop records, exact wait charging, and conformance scoring.
func BenchmarkSimulatorAttribOn(b *testing.B) { benchSimulatorAttrib(b, true, false) }

// BenchmarkSimulatorAttribOnObs adds the metrics registry, the
// configuration etsn-bench -attrib runs (slack histograms included).
func BenchmarkSimulatorAttribOnObs(b *testing.B) { benchSimulatorAttrib(b, true, true) }

// BenchmarkAttribExperiment regenerates the attribution experiment table.
func BenchmarkAttribExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Attrib(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if r.Frames == 0 {
			b.Fatal("no frames attributed")
		}
	}
}

// BenchmarkGCLSynthesis measures Gate Control List compilation.
func BenchmarkGCLSynthesis(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.75, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	p := scen.Problem().Core()
	res, err := core.Schedule(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gcl.Synthesize(res.Schedule, gcl.Config{OpenECTOnShared: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures the independent schedule checker.
func BenchmarkVerify(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.75, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	p := scen.Problem().Core()
	res, err := core.Schedule(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := core.Verify(scen.Network, res); len(vs) != 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
}

// BenchmarkExpandECT measures probabilistic-stream expansion.
func BenchmarkExpandECT(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.25, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	ect := scen.ECT[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := core.ExpandECT(ect, 128)
		if err != nil || len(ps) != 128 {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineParallel measures the experiment fan-out: the headline's
// three method cells through a 4-worker pool. Compare against
// BenchmarkHeadline for the wall-time reduction on multi-core machines.
func BenchmarkHeadlineParallel(b *testing.B) {
	opts := benchOpts
	opts.Parallel = 4
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Summaries) != 3 {
			b.Fatal("incomplete headline result")
		}
	}
}

// jobShopSolver builds a disjunctive one-resource scheduling instance: n
// tasks of the given length, each within [0, horizon]. SAT iff the tasks
// fit end to end.
func jobShopSolver(n int, length, horizon int64) *smt.Solver {
	s := smt.NewSolver()
	vars := make([]smt.Var, n)
	for i := range vars {
		vars[i] = s.NewVar("t")
		s.AssertRange(vars[i], 0, horizon)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddClause(smt.LE(vars[i], vars[j], -length), smt.LE(vars[j], vars[i], -length))
		}
	}
	return s
}

// BenchmarkCDCLvsReference compares the CDCL(T) core against the
// chronological Reference oracle on the bench/BENCH_smt.json instance
// classes: an UNSAT core and a forced Minimize objective, each buried
// behind k independent disjunctive distractor pairs. The reference solver
// re-refutes the core once per distractor assignment (2^k times); CDCL
// learns it once and backjumps past the distractors.
func BenchmarkCDCLvsReference(b *testing.B) {
	for _, mode := range []smt.Mode{smt.ModeCDCL, smt.ModeReference} {
		b.Run("buried-conflict-14/"+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := experiments.BuriedConflict(14)
				s.Mode = mode
				b.StartTimer()
				if _, err := s.Solve(); !errors.Is(err, smt.ErrUnsat) {
					b.Fatal(err)
				}
			}
		})
		b.Run("buried-minimize-12/"+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, v := experiments.BuriedMinimize(12)
				s.Mode = mode
				b.StartTimer()
				m, err := s.Minimize(v, 0, 50)
				if err != nil {
					b.Fatal(err)
				}
				if m.Value(v) != 15 {
					b.Fatalf("optimum %d, want 15", m.Value(v))
				}
			}
		})
	}
}

// BenchmarkSMTSolve measures the single deterministic search on a job-shop
// instance; the baseline for BenchmarkSMTSolvePortfolio.
func BenchmarkSMTSolve(b *testing.B) {
	const n, length = 10, 10
	horizon := int64((n - 1) * length)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := jobShopSolver(n, length, horizon)
		b.StartTimer()
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMTSolvePortfolio measures a 4-replica diversified portfolio on
// the same instance: first definitive answer wins, the rest are cancelled.
func BenchmarkSMTSolvePortfolio(b *testing.B) {
	const n, length = 10, 10
	horizon := int64((n - 1) * length)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := jobShopSolver(n, length, horizon)
		b.StartTimer()
		if _, err := s.SolvePortfolio(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandECTCached measures memoized expansion: after the first
// miss, every scheduler requesting the same ECT gets deep copies of the
// cached template instead of recomputing the possibility lattice. Compare
// against BenchmarkExpandECT (cold) for the hot-path saving.
func BenchmarkExpandECTCached(b *testing.B) {
	scen, err := experiments.NewTestbedScenario(0.25, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	ect := scen.ECT[0]
	cache := core.NewExpandCache()
	if _, err := cache.Expand(ect, 128); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := cache.Expand(ect, 128)
		if err != nil || len(ps) != 128 {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEventRate reports the simulator's raw event throughput on a
// tiny network, in processed messages per op.
func BenchmarkSimEventRate(b *testing.B) {
	n := model.NewNetwork()
	if err := n.AddDevice("a"); err != nil {
		b.Fatal(err)
	}
	if err := n.AddDevice("c"); err != nil {
		b.Fatal(err)
	}
	if err := n.AddSwitch("sw"); err != nil {
		b.Fatal(err)
	}
	if err := n.AddLink("a", "sw", model.LinkConfig{Bandwidth: 100_000_000}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddLink("sw", "c", model.LinkConfig{Bandwidth: 100_000_000}); err != nil {
		b.Fatal(err)
	}
	path, err := n.ShortestPath("a", "c")
	if err != nil {
		b.Fatal(err)
	}
	st := &model.Stream{ID: "s", Path: path, E2E: time.Millisecond,
		LengthBytes: model.MTUBytes, Period: time.Millisecond, Type: model.StreamDet}
	res, err := core.Schedule(&core.Problem{Network: n, TCT: []*model.Stream{st}})
	if err != nil {
		b.Fatal(err)
	}
	gcls, err := gcl.Synthesize(res.Schedule, gcl.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{Network: n, Schedule: res.Schedule, GCLs: gcls,
			Duration: time.Second, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if r.Delivered("s") == 0 {
			b.Fatal("no deliveries")
		}
	}
}
