// Package etsn is a from-scratch Go reproduction of "E-TSN: Enabling
// Event-triggered Critical Traffic in Time-Sensitive Networking for
// Industrial Applications" (Zhao et al., ICDCS 2022).
//
// The implementation lives under internal/:
//
//   - internal/core — the E-TSN scheduler (probabilistic streams,
//     prioritized slot sharing, prudent reservation, SMT formulation).
//   - internal/smt — a difference-logic SMT solver standing in for Z3.
//   - internal/model — network, stream, frame-slot, and schedule model.
//   - internal/gcl — 802.1Qbv Gate Control List synthesis.
//   - internal/sim — a nanosecond discrete-event TSN simulator
//     (Qbv gates, strict priority, Qav credit-based shaping).
//   - internal/ptp — an 802.1AS clock-synchronization model.
//   - internal/sched — the PERIOD and AVB baselines as runnable plans.
//   - internal/traffic — IEC/IEEE 60802-style workload generation.
//   - internal/stats — latency summaries, quantiles, and CDFs.
//   - internal/qcc — the 802.1Qcc CUC/CNC configuration pipeline.
//   - internal/experiments — every figure of the paper's evaluation.
//
// The benchmarks in bench_test.go regenerate each table and figure; the
// executables under cmd/ expose the same pipelines as CLI tools; examples/
// holds runnable scenario walkthroughs.
package etsn
