package etsn_test

import (
	"strings"
	"testing"
	"time"

	"etsn/internal/core"
	"etsn/internal/experiments"
	"etsn/internal/gcl"
	"etsn/internal/model"
	"etsn/internal/ptp"
	"etsn/internal/qcc"
	"etsn/internal/sched"
	"etsn/internal/sim"
	"etsn/internal/stats"
)

// pipelineConfig is a small industrial cell used by the cross-module tests.
const pipelineConfig = `{
  "network": {
    "devices": ["sensor", "actor", "panel", "hmi"],
    "switches": ["swA", "swB"],
    "links": [
      {"a": "sensor", "b": "swA", "bandwidth_bps": 100000000},
      {"a": "panel",  "b": "swA", "bandwidth_bps": 100000000},
      {"a": "swA",    "b": "swB", "bandwidth_bps": 100000000},
      {"a": "actor",  "b": "swB", "bandwidth_bps": 100000000},
      {"a": "hmi",    "b": "swB", "bandwidth_bps": 100000000}
    ]
  },
  "streams": [
    {"id": "telemetry", "talker": "sensor", "listener": "hmi", "type": "time-triggered",
     "period_us": 2000, "max_latency_us": 4000, "payload_bytes": 3000, "share": true},
    {"id": "control",   "talker": "hmi", "listener": "actor", "type": "time-triggered",
     "period_us": 4000, "max_latency_us": 8000, "payload_bytes": 1500, "share": true},
    {"id": "estop",     "talker": "panel", "listener": "actor", "type": "event-triggered",
     "period_us": 20000, "max_latency_us": 4000, "payload_bytes": 256}
  ],
  "options": {"n_prob": 64, "spread": true, "shared_reserves": true}
}`

// TestIntegrationQccToSimWithPTP drives the complete stack: JSON
// requirements -> CNC -> GCLs -> simulation under imperfect 802.1AS clocks,
// checking every contracted deadline.
func TestIntegrationQccToSimWithPTP(t *testing.T) {
	cfg, err := qcc.Parse([]byte(pipelineConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := qcc.Compute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clocks := map[model.NodeID]ptp.Clock{
		"sensor": {DriftPPM: 20}, "actor": {DriftPPM: -20},
		"panel": {DriftPPM: 10}, "hmi": {DriftPPM: -10}, "swB": {DriftPPM: 5},
	}
	domain, err := ptp.NewDomain(dep.Network, clocks, ptp.Config{
		Interval:       31250 * time.Microsecond,
		PathDelayError: 20 * time.Nanosecond,
		Grandmaster:    "swA",
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Network:     dep.Network,
		Schedule:    dep.Result.Schedule,
		GCLs:        dep.GCLs,
		ECT:         []sim.ECTTraffic{{Stream: dep.Problem.ECT[0], Priority: model.PriorityECT}},
		Duration:    4 * time.Second,
		Seed:        5,
		ClockOffset: domain.OffsetFunc(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range cfg.Streams {
		lats := r.Latencies(model.StreamID(req.ID))
		if len(lats) == 0 {
			t.Fatalf("stream %s delivered nothing", req.ID)
		}
		deadline := time.Duration(req.MaxLatencyUs) * time.Microsecond
		for i, l := range lats {
			if l > deadline {
				t.Fatalf("stream %s message %d latency %v exceeds %v (sync residual %v)",
					req.ID, i, l, deadline, domain.MaxWorstResidual())
			}
		}
	}
	if r.TotalDrops() != 0 {
		t.Fatalf("drops: %d", r.TotalDrops())
	}
}

// TestIntegrationOnlineAdmission deploys a schedule, admits a new emergency
// stream online, recompiles GCLs, and verifies both the stability of the
// deployed slots and the live behaviour of old and new traffic.
func TestIntegrationOnlineAdmission(t *testing.T) {
	cfg, err := qcc.Parse([]byte(pipelineConfig))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := qcc.Compute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newECT := &model.ECT{
		ID:            "hazard",
		E2E:           4 * time.Millisecond,
		LengthBytes:   512,
		MinInterevent: 20 * time.Millisecond,
	}
	path, err := dep.Network.ShortestPath("sensor", "hmi")
	if err != nil {
		t.Fatal(err)
	}
	newECT.Path = path
	next, err := core.Admit(dep.Problem, dep.Result, nil, []*model.ECT{newECT})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !core.SlotsUnchanged(dep.Result.Schedule, next.Schedule) {
		t.Fatal("admission disturbed deployed slots")
	}
	if vs := core.Verify(dep.Network, next); len(vs) != 0 {
		t.Fatalf("admitted schedule invalid: %v", vs[0])
	}
	gcls, err := gcl.Synthesize(next.Schedule, gcl.Config{OpenECTOnShared: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Network:  dep.Network,
		Schedule: next.Schedule,
		GCLs:     gcls,
		ECT: []sim.ECTTraffic{
			{Stream: dep.Problem.ECT[0], Priority: model.PriorityECT},
			{Stream: newECT, Priority: model.PriorityECT},
		},
		Duration: 4 * time.Second,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	bound, err := core.ECTWorstCaseBound(dep.Network, next, "hazard")
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range r.Latencies("hazard") {
		if l > bound {
			t.Fatalf("hazard message %d latency %v exceeds bound %v", i, l, bound)
		}
	}
	// Old TCT still meets its deadline with the second event source live.
	for i, l := range r.Latencies("telemetry") {
		if l > 4*time.Millisecond {
			t.Fatalf("telemetry message %d latency %v after admission", i, l)
		}
	}
}

// TestIntegrationBackendsAgreeLive schedules the same problem with the
// placer and the SMT backend and simulates both: both must verify and both
// must respect the ECT deadline at runtime.
func TestIntegrationBackendsAgreeLive(t *testing.T) {
	cfg, err := qcc.Parse([]byte(strings.Replace(pipelineConfig, `"n_prob": 64`, `"n_prob": 6`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"placer", "smt-incremental"} {
		cfg.Options.Backend = backend
		cfg.Options.Spread = false // the SMT backend places its own way
		p, err := cfg.BuildProblem()
		if err != nil {
			t.Fatal(err)
		}
		p.Opts.MaxDecisions = 2_000_000
		res, err := core.Schedule(p)
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if vs := core.Verify(p.Network, res); len(vs) != 0 {
			t.Fatalf("backend %s: %v", backend, vs[0])
		}
		gcls, err := gcl.Synthesize(res.Schedule, gcl.Config{OpenECTOnShared: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(sim.Config{
			Network:  p.Network,
			Schedule: res.Schedule,
			GCLs:     gcls,
			ECT:      []sim.ECTTraffic{{Stream: p.ECT[0], Priority: model.PriorityECT}},
			Duration: 2 * time.Second,
			Seed:     8,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := stats.Summarize(r.Latencies("estop"))
		if sum.Count == 0 {
			t.Fatalf("backend %s: no estop deliveries", backend)
		}
		// The SMT backend satisfies the constraints but does not optimize
		// EP-window dispersion, so the runtime guarantee is the analytic
		// runtime bound, not the schedule-term deadline.
		bound, err := core.ECTWorstCaseBound(p.Network, res, "estop")
		if err != nil {
			t.Fatal(err)
		}
		if sum.Max > bound {
			t.Fatalf("backend %s: estop worst %v exceeds runtime bound %v", backend, sum.Max, bound)
		}
		if sched, err := core.ECTScheduleWorstCase(p.Network, res, "estop"); err != nil ||
			sched > 4*time.Millisecond {
			t.Fatalf("backend %s: schedule worst case %v (err %v)", backend, sched, err)
		}
	}
}

// TestIntegrationPlanComparison runs the three methods through the sched
// facade on a generated workload and sanity-checks the full ordering chain
// one more time from the top-level API.
func TestIntegrationPlanComparison(t *testing.T) {
	scen, err := experiments.NewTestbedScenario(0.5, 1234)
	if err != nil {
		t.Fatal(err)
	}
	worst := make(map[sched.Method]time.Duration, 3)
	for _, m := range []sched.Method{sched.MethodETSN, sched.MethodPERIOD, sched.MethodAVB} {
		plan, err := sched.Build(m, scen.Problem(), 1)
		if err != nil {
			t.Fatalf("Build(%v): %v", m, err)
		}
		r, err := plan.Simulate(scen.Network, scen.ECT, scen.BE, 2*time.Second, 99)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", m, err)
		}
		worst[m] = stats.Summarize(r.Latencies("ect")).Max
	}
	if worst[sched.MethodETSN] >= worst[sched.MethodPERIOD] ||
		worst[sched.MethodETSN] >= worst[sched.MethodAVB] {
		t.Fatalf("E-TSN worst %v not lowest (PERIOD %v, AVB %v)",
			worst[sched.MethodETSN], worst[sched.MethodPERIOD], worst[sched.MethodAVB])
	}
}
